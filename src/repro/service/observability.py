"""Service metrics: latency histograms, gauges, counters, and /metrics text.

Everything is stdlib and lock-protected.  The exposition format follows the
Prometheus text conventions (``# TYPE`` lines, ``_bucket``/``_sum``/
``_count`` histogram series with cumulative ``le`` buckets) so any standard
scraper can consume ``GET /metrics``, while :meth:`LatencyHistogram.quantile`
gives the benchmarks p50/p95 straight from the buckets.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from ..core.indices import AccessStats

__all__ = ["LatencyHistogram", "ServiceMetrics", "render_metrics"]

DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Latency bucket upper bounds, in seconds (plus an implicit +Inf)."""


class LatencyHistogram:
    """A fixed-bucket histogram of request durations (seconds)."""

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(buckets))
        self.counts = [0] * (len(self.bounds) + 1)  # last slot is +Inf
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        with self._lock:
            slot = len(self.bounds)
            for index, bound in enumerate(self.bounds):
                if seconds <= bound:
                    slot = index
                    break
            self.counts[slot] += 1
            self.total += seconds
            self.count += 1

    def snapshot(self) -> dict:
        """Consistent copy: per-bucket counts, sum, and count."""
        with self._lock:
            return {
                "bounds": self.bounds,
                "counts": tuple(self.counts),
                "sum": self.total,
                "count": self.count,
            }

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper bounds (0 when empty)."""
        snap = self.snapshot()
        if snap["count"] == 0:
            return 0.0
        target = q * snap["count"]
        cumulative = 0
        for bound, count in zip(snap["bounds"], snap["counts"]):
            cumulative += count
            if cumulative >= target:
                return bound
        return snap["bounds"][-1] if snap["bounds"] else 0.0


class ServiceMetrics:
    """All service-side instrumentation behind one thread-safe facade."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}
        self._in_flight: dict[str, int] = {}
        self._requests: dict[tuple[str, int], int] = {}
        self.sorted_accesses = 0
        self.random_accesses = 0
        self.connections = 0
        self.timeouts = 0
        self.abandoned_requests = 0
        self.degraded_responses = 0
        self.batches = 0
        self.batch_items = 0
        self.batch_shared_items = 0
        self.batch_groups = 0
        self.resizes = 0
        self.datasets_migrated = 0
        self.resize_seconds = LatencyHistogram()
        self.shard_restarts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------

    def histogram(self, endpoint: str) -> LatencyHistogram:
        """The latency histogram for one endpoint (created on first use)."""
        with self._lock:
            histogram = self._histograms.get(endpoint)
            if histogram is None:
                histogram = self._histograms[endpoint] = LatencyHistogram()
            return histogram

    def request_started(self, endpoint: str) -> None:
        with self._lock:
            self._in_flight[endpoint] = self._in_flight.get(endpoint, 0) + 1

    def request_finished(self, endpoint: str, status: int, seconds: float) -> None:
        with self._lock:
            self._in_flight[endpoint] = max(0, self._in_flight.get(endpoint, 1) - 1)
            key = (endpoint, status)
            self._requests[key] = self._requests.get(key, 0) + 1
        self.histogram(endpoint).observe(seconds)

    def record_connection(self) -> None:
        """Count one accepted transport connection (not one request).

        Incremented by the transport layer when a client connection is
        established, so keep-alive reuse is observable: N requests over one
        connection move ``fbox_requests_total`` by N but this by 1.
        """
        with self._lock:
            self.connections += 1

    def total_in_flight(self) -> int:
        """Requests currently being handled, across every endpoint.

        The drain step of graceful shutdown polls this: zero means every
        admitted or queued request has answered and the process may exit.
        """
        with self._lock:
            return sum(self._in_flight.values())

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def record_abandoned(self) -> None:
        """Count one worker abandoned at its deadline (it may still finish)."""
        with self._lock:
            self.abandoned_requests += 1

    def record_degraded(self) -> None:
        """Count one stale last-known-good answer served in degraded mode."""
        with self._lock:
            self.degraded_responses += 1

    def record_batch(self, items: int, groups: int, shared_items: int) -> None:
        """Account one ``/batch`` call.

        ``items`` is the batch size, ``groups`` how many shared index sweeps
        the planner ran, and ``shared_items`` how many items were answered
        from a sweep they shared with at least one sibling — so
        ``batch_shared_items / batch_items`` is the fleet-wide sharing ratio
        and ``batch_items / batches`` the mean batch size.
        """
        with self._lock:
            self.batches += 1
            self.batch_items += items
            self.batch_groups += groups
            self.batch_shared_items += shared_items

    def record_resize(self, seconds: float) -> None:
        """Account one completed live shard-pool resize."""
        with self._lock:
            self.resizes += 1
        self.resize_seconds.observe(seconds)

    def record_dataset_migrated(self, count: int = 1) -> None:
        """Count datasets whose state moved between workers during a resize."""
        with self._lock:
            self.datasets_migrated += count

    def record_shard_restart(self, shard: int) -> None:
        """Count one monitor-driven worker restart for the given shard."""
        with self._lock:
            self.shard_restarts[shard] = self.shard_restarts.get(shard, 0) + 1

    # ------------------------------------------------------------------
    # Index access accounting
    # ------------------------------------------------------------------

    def record_access_stats(self, stats: AccessStats) -> None:
        """Accumulate one query's index-access delta into the service totals."""
        snap = stats.snapshot()
        with self._lock:
            self.sorted_accesses += snap.sorted_accesses
            self.random_accesses += snap.random_accesses

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything, consistently: gauges, counters, histogram snapshots."""
        with self._lock:
            in_flight = dict(self._in_flight)
            requests = dict(self._requests)
            sorted_accesses = self.sorted_accesses
            random_accesses = self.random_accesses
            connections = self.connections
            timeouts = self.timeouts
            abandoned = self.abandoned_requests
            degraded = self.degraded_responses
            batches = self.batches
            batch_items = self.batch_items
            batch_shared_items = self.batch_shared_items
            batch_groups = self.batch_groups
            resizes = self.resizes
            datasets_migrated = self.datasets_migrated
            shard_restarts = dict(self.shard_restarts)
            histograms = dict(self._histograms)
        return {
            "in_flight": in_flight,
            "requests": requests,
            "sorted_accesses": sorted_accesses,
            "random_accesses": random_accesses,
            "connections": connections,
            "timeouts": timeouts,
            "abandoned_requests": abandoned,
            "degraded_responses": degraded,
            "batches": batches,
            "batch_items": batch_items,
            "batch_shared_items": batch_shared_items,
            "batch_groups": batch_groups,
            "resizes": resizes,
            "datasets_migrated": datasets_migrated,
            "shard_restarts": shard_restarts,
            "resize_seconds": self.resize_seconds.snapshot(),
            "histograms": {
                endpoint: histogram.snapshot()
                for endpoint, histogram in histograms.items()
            },
        }


def _labels(pairs: Mapping[str, object]) -> str:
    inner = ",".join(f'{key}="{value}"' for key, value in pairs.items())
    return "{" + inner + "}" if inner else ""


_BREAKER_STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}


def render_metrics(
    metrics: ServiceMetrics,
    cache_stats: Mapping[str, int],
    build_counts: Mapping[str, int],
    admission_stats: Mapping[str, object] | None = None,
    breaker_states: Mapping[str, Mapping[str, object]] | None = None,
    fault_stats: Iterable[Mapping[str, object]] | None = None,
    extra_counters: Mapping[str, int] | None = None,
) -> str:
    """Render the full /metrics exposition text.

    The resilience families (admission counters, queue depth, breaker
    states, injected-fault counts) appear only when the corresponding
    component is attached, so bare :class:`ServiceMetrics` users keep the
    original exposition.  ``extra_counters`` adds worker-side deltas
    (sorted/random accesses, abandoned requests, degraded responses) to the
    front's own counts — how the shard router folds its workers' truth
    into one exposition.
    """
    snap = metrics.snapshot()
    extra = dict(extra_counters or {})
    for key in (
        "sorted_accesses", "random_accesses",
        "abandoned_requests", "degraded_responses",
    ):
        snap[key] += int(extra.get(key, 0))
    lines: list[str] = []

    lines.append("# TYPE fbox_requests_total counter")
    for (endpoint, status), count in sorted(snap["requests"].items()):
        lines.append(
            f"fbox_requests_total{_labels({'endpoint': endpoint, 'status': status})} {count}"
        )

    lines.append("# TYPE fbox_in_flight gauge")
    for endpoint, gauge in sorted(snap["in_flight"].items()):
        lines.append(f"fbox_in_flight{_labels({'endpoint': endpoint})} {gauge}")

    lines.append("# TYPE fbox_request_seconds histogram")
    for endpoint, histogram in sorted(snap["histograms"].items()):
        cumulative = 0
        for bound, count in zip(histogram["bounds"], histogram["counts"]):
            cumulative += count
            lines.append(
                "fbox_request_seconds_bucket"
                f"{_labels({'endpoint': endpoint, 'le': bound})} {cumulative}"
            )
        cumulative += histogram["counts"][-1]
        lines.append(
            "fbox_request_seconds_bucket"
            f"{_labels({'endpoint': endpoint, 'le': '+Inf'})} {cumulative}"
        )
        lines.append(
            f"fbox_request_seconds_sum{_labels({'endpoint': endpoint})} "
            f"{histogram['sum']:.6f}"
        )
        lines.append(
            f"fbox_request_seconds_count{_labels({'endpoint': endpoint})} "
            f"{histogram['count']}"
        )

    lines.append("# TYPE fbox_index_accesses_total counter")
    lines.append(
        f"fbox_index_accesses_total{_labels({'mode': 'sorted'})} {snap['sorted_accesses']}"
    )
    lines.append(
        f"fbox_index_accesses_total{_labels({'mode': 'random'})} {snap['random_accesses']}"
    )

    lines.append("# TYPE fbox_connections_total counter")
    lines.append(f"fbox_connections_total {snap['connections']}")

    lines.append("# TYPE fbox_request_timeouts_total counter")
    lines.append(f"fbox_request_timeouts_total {snap['timeouts']}")

    lines.append("# TYPE fbox_abandoned_requests_total counter")
    lines.append(f"fbox_abandoned_requests_total {snap['abandoned_requests']}")

    lines.append("# TYPE fbox_degraded_responses_total counter")
    lines.append(f"fbox_degraded_responses_total {snap['degraded_responses']}")

    # The live-ingest write path.  In-process these come straight from the
    # ingest manager; under sharding the app sums the workers' counters into
    # ``extra_counters`` before rendering.
    lines.append("# TYPE fbox_ingest_batches_total counter")
    lines.append(f"fbox_ingest_batches_total {int(extra.get('ingest_batches', 0))}")
    lines.append("# TYPE fbox_ingest_observations_total counter")
    lines.append(
        f"fbox_ingest_observations_total {int(extra.get('ingest_observations', 0))}"
    )
    lines.append("# TYPE fbox_ingest_replays_total counter")
    lines.append(
        f"fbox_ingest_replays_total{_labels({'kind': 'ledger'})} "
        f"{int(extra.get('ingest_replays_ledger', 0))}"
    )
    lines.append(
        f"fbox_ingest_replays_total{_labels({'kind': 'conflict'})} "
        f"{int(extra.get('ingest_replays_conflict', 0))}"
    )
    lines.append("# TYPE fbox_fairness_alerts_total counter")
    lines.append(f"fbox_fairness_alerts_total {int(extra.get('fairness_alerts', 0))}")

    if admission_stats is not None:
        lines.append("# TYPE fbox_admission_total counter")
        for outcome in ("accepted", "shed"):
            lines.append(
                f"fbox_admission_total{_labels({'outcome': outcome})} "
                f"{admission_stats[outcome]}"
            )
        lines.append("# TYPE fbox_queue_depth gauge")
        lines.append(f"fbox_queue_depth {admission_stats['queue_depth']}")
        lines.append("# TYPE fbox_admission_active gauge")
        lines.append(f"fbox_admission_active {admission_stats['active']}")
        lines.append("# TYPE fbox_concurrency_limit gauge")
        lines.append(f"fbox_concurrency_limit {admission_stats['max_concurrency']}")
        lines.append("# TYPE fbox_queue_limit gauge")
        lines.append(f"fbox_queue_limit {admission_stats['max_queue']}")

    if breaker_states is not None:
        lines.append("# TYPE fbox_breaker_state gauge")
        for dataset, state in sorted(breaker_states.items()):
            value = _BREAKER_STATE_VALUES.get(str(state["state"]), -1)
            lines.append(
                f"fbox_breaker_state{_labels({'dataset': dataset})} {value}"
            )
        lines.append("# TYPE fbox_breaker_transitions_total counter")
        for dataset, state in sorted(breaker_states.items()):
            lines.append(
                "fbox_breaker_transitions_total"
                f"{_labels({'dataset': dataset})} {len(state['transitions'])}"
            )

    if fault_stats is not None:
        lines.append("# TYPE fbox_injected_faults_total counter")
        totals: dict[str, int] = {}
        for rule in fault_stats:
            site = str(rule["site"])
            totals[site] = totals.get(site, 0) + int(rule["fired"])
        for site in sorted(totals):
            lines.append(
                f"fbox_injected_faults_total{_labels({'site': site})} {totals[site]}"
            )

    lines.append("# TYPE fbox_batches_total counter")
    lines.append(f"fbox_batches_total {snap['batches']}")
    lines.append("# TYPE fbox_batch_items_total counter")
    for label, count in (
        ("all", snap["batch_items"]),
        ("shared_sweep", snap["batch_shared_items"]),
    ):
        lines.append(
            f"fbox_batch_items_total{_labels({'kind': label})} {count}"
        )
    lines.append("# TYPE fbox_batch_sweep_groups_total counter")
    lines.append(f"fbox_batch_sweep_groups_total {snap['batch_groups']}")

    # Live shard-pool resize accounting.  Rendered unconditionally (zero
    # when the instance runs in-process) so dashboards keep a stable set of
    # families across deployments.
    lines.append("# TYPE fbox_resizes_total counter")
    lines.append(f"fbox_resizes_total {snap['resizes']}")
    lines.append("# TYPE fbox_datasets_migrated_total counter")
    lines.append(f"fbox_datasets_migrated_total {snap['datasets_migrated']}")
    lines.append("# TYPE fbox_resize_duration_seconds histogram")
    resize_hist = snap["resize_seconds"]
    cumulative = 0
    for bound, count in zip(resize_hist["bounds"], resize_hist["counts"]):
        cumulative += count
        lines.append(
            f"fbox_resize_duration_seconds_bucket{_labels({'le': bound})} {cumulative}"
        )
    cumulative += resize_hist["counts"][-1]
    lines.append(
        f"fbox_resize_duration_seconds_bucket{_labels({'le': '+Inf'})} {cumulative}"
    )
    lines.append(f"fbox_resize_duration_seconds_sum {resize_hist['sum']:.6f}")
    lines.append(f"fbox_resize_duration_seconds_count {resize_hist['count']}")
    lines.append("# TYPE fbox_shard_restarts_total counter")
    for shard, count in sorted(snap["shard_restarts"].items()):
        lines.append(
            f"fbox_shard_restarts_total{_labels({'shard': shard})} {count}"
        )

    lines.append("# TYPE fbox_cache_events_total counter")
    for event in ("hits", "misses", "evictions", "expirations"):
        lines.append(
            f"fbox_cache_events_total{_labels({'event': event})} "
            f"{cache_stats.get(event, 0)}"
        )
    lines.append("# TYPE fbox_cache_entries gauge")
    lines.append(f"fbox_cache_entries {cache_stats['size']}")
    lines.append("# TYPE fbox_cache_capacity gauge")
    lines.append(f"fbox_cache_capacity {cache_stats['capacity']}")

    lines.append("# TYPE fbox_cube_builds_total counter")
    lines.append(f"fbox_cube_builds_total {build_counts['cube_builds']}")
    lines.append("# TYPE fbox_index_family_builds_total counter")
    lines.append(f"fbox_index_family_builds_total {build_counts['family_builds']}")
    lines.append("# TYPE fbox_segment_attaches_total counter")
    lines.append(
        f"fbox_segment_attaches_total {build_counts.get('segment_attaches', 0)}"
    )
    lines.append("# TYPE fbox_delta_applies_total counter")
    lines.append(f"fbox_delta_applies_total {build_counts.get('delta_applies', 0)}")
    lines.append("# TYPE fbox_delta_cells_recomputed_total counter")
    lines.append(
        f"fbox_delta_cells_recomputed_total {build_counts.get('delta_cells', 0)}"
    )
    lines.append("# TYPE fbox_delta_lists_rebuilt_total counter")
    lines.append(
        f"fbox_delta_lists_rebuilt_total {build_counts.get('delta_lists', 0)}"
    )
    lines.append("# TYPE fbox_instances gauge")
    lines.append(f"fbox_instances {build_counts['fboxes']}")

    return "\n".join(lines) + "\n"
