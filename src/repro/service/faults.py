"""Deterministic fault injection for chaos-testing the service.

Every resilience behavior — breaker trips, shed requests, degraded stale
answers — is exercised by *reproducible* chaos rather than prayer: a
:class:`FaultInjector` holds an ordered list of :class:`FaultRule` entries
and one seeded :class:`random.Random`, so with a fixed seed and a fixed call
sequence the exact same faults fire in the exact same order on every run.

Injection sites (the strings the service passes to :meth:`FaultInjector.fail`
/ :meth:`FaultInjector.delay`):

``dataset_load``
    Checked by :class:`~repro.service.registry.DatasetRegistry` immediately
    before a dataset loader runs; a firing rule raises :class:`InjectedFault`
    as if the load itself crashed (this is what trips circuit breakers).
``handler``
    Checked by the HTTP layer before dispatching a POST handler; a firing
    rule raises :class:`InjectedFault`, surfacing as a 500.
``latency``
    Checked by the HTTP layer inside the request deadline; a firing rule
    sleeps ``latency`` seconds and/or burns ``busy`` seconds of CPU (the
    spin *contends* for the GIL, which is how overload benchmarks create
    realistic queueing without real datasets).
``worker_exit``
    Checked by shard worker processes (:mod:`repro.service.shard_worker`)
    right before dispatching a request; a firing rule makes the worker
    ``os._exit`` mid-request — the front-end sees the connection die, which
    is how shard-crash chaos tests script a worker kill deterministically.
    Ignored by the in-process (``--shards 0``) execution path.  Besides
    request paths, workers also check this site around live-resize state
    migration with the targets ``/admin/export:<dataset>`` and
    ``/admin/import:<dataset>`` — matching rules kill the *source* or the
    *destination* worker mid-migration, the two chaos arcs a resize must
    survive.  (Respawned workers deduct the parent's observed crash count
    from every ``worker_exit`` rule, so scripts use one rule per kill.)

Configuration is either programmatic (tests build injectors directly) or via
the ``FBOX_FAULTS`` environment variable holding JSON::

    FBOX_FAULTS='{"seed": 7, "rules": [
        {"site": "dataset_load", "match": "google", "times": 2},
        {"site": "latency", "match": "/quantify", "skip": 1, "latency": 5.0}
    ]}'
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase
from random import Random
from threading import Lock

__all__ = [
    "FaultRule",
    "FaultInjector",
    "InjectedFault",
    "FAULTS_ENV_VAR",
    "faults_from_env",
]

FAULTS_ENV_VAR = "FBOX_FAULTS"

_SITES = ("dataset_load", "handler", "latency", "worker_exit")


class InjectedFault(RuntimeError):
    """An artificial failure raised by a firing fault rule.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: injected
    load/handler crashes must look like unexpected infrastructure failures
    (500s, breaker food), not like validation errors the service maps to
    4xx responses.
    """


@dataclass(frozen=True)
class FaultRule:
    """One injection rule.

    Parameters
    ----------
    site:
        Which injection point this rule watches (see the module docstring).
    match:
        Glob matched against the call's target — a dataset name for
        ``dataset_load``, an endpoint path for ``handler``/``latency``.
    probability:
        Chance a matching call fires, drawn from the injector's seeded RNG
        (1.0 = always, the deterministic default).
    times:
        Maximum number of firings (``None`` = unlimited); after that the
        rule goes inert, which is how "fails twice then recovers" scenarios
        are scripted.
    skip:
        Number of matching calls to leave unaffected before the rule arms —
        lets a scenario warm a cache with call one and fault call two.
    latency:
        Seconds to sleep when a ``latency`` rule fires.
    busy:
        Seconds of CPU to burn (GIL-contending spin) when a ``latency``
        rule fires.
    message:
        Text of the raised :class:`InjectedFault`.
    """

    site: str
    match: str = "*"
    probability: float = 1.0
    times: int | None = None
    skip: int = 0
    latency: float = 0.0
    busy: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.site not in _SITES:
            raise ValueError(f"fault site must be one of {_SITES}, got {self.site!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0, got {self.skip}")
        if self.times is not None and self.times < 0:
            raise ValueError(f"times must be >= 0, got {self.times}")


class FaultInjector:
    """Seeded, counter-tracking evaluator of :class:`FaultRule` lists.

    Thread-safe; rule decisions (skip counters, firing caps, probability
    draws) happen under one lock so a fixed seed plus a deterministic call
    sequence reproduces the exact same fault sequence.  Sleeps and spins
    happen *outside* the lock so latency injection never serializes the
    server.
    """

    def __init__(
        self,
        rules: list[FaultRule] | tuple[FaultRule, ...] = (),
        seed: int = 0,
        sleeper=time.sleep,
    ) -> None:
        self.rules = tuple(rules)
        self.seed = seed
        self._rng = Random(seed)
        self._sleeper = sleeper
        self._lock = Lock()
        self._matched = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)

    # ------------------------------------------------------------------
    # Decision core
    # ------------------------------------------------------------------

    def _firing_rules(self, site: str, target: str) -> list[FaultRule]:
        """All rules that fire for this call (counters advance under lock)."""
        firing: list[FaultRule] = []
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.site != site or not fnmatchcase(target, rule.match):
                    continue
                self._matched[index] += 1
                if self._matched[index] <= rule.skip:
                    continue
                if rule.times is not None and self._fired[index] >= rule.times:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                self._fired[index] += 1
                firing.append(rule)
        return firing

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------

    def fail(self, site: str, target: str) -> None:
        """Raise :class:`InjectedFault` when a failure rule fires for ``target``."""
        for rule in self._firing_rules(site, target):
            raise InjectedFault(
                f"{rule.message} (site={site}, target={target})"
            )

    def delay(self, target: str) -> None:
        """Apply any firing ``latency`` rule: sleep and/or burn CPU."""
        for rule in self._firing_rules("latency", target):
            if rule.latency > 0:
                self._sleeper(rule.latency)
            if rule.busy > 0:
                _burn_cpu(rule.busy)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Per-rule matched/fired counters (for /metrics and assertions)."""
        with self._lock:
            return [
                {
                    "site": rule.site,
                    "match": rule.match,
                    "matched": matched,
                    "fired": fired,
                }
                for rule, matched, fired in zip(self.rules, self._matched, self._fired)
            ]

    def fired_total(self) -> int:
        """How many faults have fired across every rule."""
        with self._lock:
            return sum(self._fired)


def _burn_cpu(seconds: float) -> None:
    """Burn ``seconds`` of *this thread's CPU time* — contends the GIL.

    The deadline is thread-CPU time, not wall clock, so N concurrent
    burners really do demand N × ``seconds`` of interpreter time and
    serialize through the GIL — exactly the saturation an admission
    controller exists to manage.  A wall-clock deadline would let every
    burner finish ``seconds`` after it started no matter the load,
    modeling sleep, not work.
    """
    deadline = time.thread_time() + seconds
    value = 0
    while time.thread_time() < deadline:
        value = (value + 1) % 1_000_003



def faults_from_env(environ: dict | None = None) -> FaultInjector | None:
    """Build an injector from ``FBOX_FAULTS`` (None when unset).

    The value is JSON: ``{"seed": int, "rules": [{rule fields...}]}``.
    A malformed value raises immediately — a chaos run with silently
    ignored faults would "pass" without testing anything.
    """
    environ = environ if environ is not None else os.environ
    raw = environ.get(FAULTS_ENV_VAR)
    if not raw:
        return None
    try:
        spec = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ValueError(f"{FAULTS_ENV_VAR} is not valid JSON: {error}") from None
    if not isinstance(spec, dict):
        raise ValueError(f"{FAULTS_ENV_VAR} must be a JSON object")
    rules = [FaultRule(**rule) for rule in spec.get("rules", [])]
    return FaultInjector(rules=rules, seed=int(spec.get("seed", 0)))
