"""Multi-process dataset sharding: the worker-process half.

:func:`worker_main` is the target :class:`~repro.service.sharding.ShardRouter`
forks.  One worker owns the datasets, cubes, index families, result cache,
and last-known-good store for its shard and answers the router's
length-prefixed JSON frames (``ping`` / ``status`` / ``call`` /
``export_dataset`` / ``import_dataset`` / ``shutdown``) over the pre-bound
listener socket it inherited.  The export/import pair is the live-resize
state handoff: the router snapshots a moving dataset's journal, ledger,
high-water sequence, and trend ring from its old owner and replays them
into the new one before flipping routing.

``call`` runs the untouched single-process POST pipeline —
:meth:`repro.service.app.FBoxApp.run_post` against a worker-local
:class:`~repro.service.handlers.ServiceContext` — so parsing, validation,
caching, breaker accounting, deadline enforcement, and degraded stale
answers behave byte-for-byte like the unsharded service.  Admission control
stays front-side (the router is one logical service; shedding twice would
double-count), which is why the worker's context has no controller.

Chaos hooks: a ``worker_exit`` fault rule firing for the request path makes
the worker ``os._exit`` before dispatching — the router sees the connection
die, trips the shard breaker, and restarts the worker.  Respawned workers
receive ``exit_faults_consumed`` (the shard's crash count) and deduct it
from every ``worker_exit`` rule's ``times`` budget, because each fresh
process rebuilds its injector with zeroed counters — without the deduction
a "kill once" rule would kill every replacement forever.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import socket
import threading
from dataclasses import dataclass

from .app import FBoxApp, Request
from .cache import LRUCache
from .errors import NotFound, ServiceError
from .faults import FaultInjector, FaultRule, InjectedFault
from .handlers import ServiceContext
from .ingest import IngestManager, decode_observations
from .observability import ServiceMetrics
from .registry import DatasetRegistry, DatasetSpec
from .resilience import BreakerConfig
from .sharding import encode_error, recv_frame, send_frame

__all__ = ["WorkerConfig", "worker_main"]

_logger = logging.getLogger("repro.service")

_EXIT_INJECTED = 23
"""Exit status of a scripted ``worker_exit`` kill (distinguishable from a
real crash in the router's logs)."""


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs beyond its dataset specs (plain data only
    — this crosses the fork, so no live locks or registries)."""

    index: int
    request_timeout: float | None
    cache_size: int
    cache_ttl: float | None
    schema: object
    breaker_config: BreakerConfig
    exit_faults_consumed: int = 0
    alert_threshold: float | None = None
    core: str = "dict"
    namespace: str | None = None


def _rebuild_faults(fault_spec, consumed: int) -> FaultInjector | None:
    """A fresh injector for this process, with ``worker_exit`` budgets
    reduced by the kills previous incarnations already delivered."""
    if fault_spec is None:
        return None
    rules, seed = fault_spec
    adjusted: list[FaultRule] = []
    for rule in rules:
        if rule.site == "worker_exit" and rule.times is not None and consumed:
            rule = dataclasses.replace(rule, times=max(0, rule.times - consumed))
        adjusted.append(rule)
    return FaultInjector(rules=adjusted, seed=seed)


def _build_app(
    specs: tuple[DatasetSpec, ...],
    faults: FaultInjector | None,
    config: WorkerConfig,
) -> tuple[FBoxApp, ServiceContext]:
    registry = DatasetRegistry(
        schema=config.schema,
        breaker_config=config.breaker_config,
        faults=faults,
        core=config.core,
        namespace=config.namespace,
        # The front owns segment cleanup: a worker must never unlink the
        # published segments it would want to re-attach to after a restart.
        owns_segments=False,
    )
    for spec in specs:
        registry.register(spec)
    context = ServiceContext(
        registry=registry,
        cache=LRUCache(config.cache_size, default_ttl=config.cache_ttl),
        metrics=ServiceMetrics(),
        stale=LRUCache(max(config.cache_size, 1)),
        admission=None,
        faults=faults,
        ingest=IngestManager(alert_threshold=config.alert_threshold),
    )
    return FBoxApp(context, request_timeout=config.request_timeout), context


def _status_document(
    config: WorkerConfig, context: ServiceContext, faults: FaultInjector | None
) -> dict:
    """The worker-truth half of the service's observability surface: the
    router merges these into ``/datasets``, ``/readyz``, and ``/metrics``."""
    registry = context.registry
    snap = context.metrics.snapshot()
    datasets = []
    for entry in registry.describe():
        entry = dict(entry)
        entry.update(context.ingest.dataset_facts(entry["name"]))
        datasets.append(entry)
    return {
        "ok": True,
        "shard": config.index,
        "datasets": datasets,
        "health": registry.health_report(),
        "breakers": registry.breaker_states(),
        "cache": context.cache.stats(),
        "builds": registry.build_counts(),
        "counters": {
            "sorted_accesses": snap["sorted_accesses"],
            "random_accesses": snap["random_accesses"],
            "abandoned_requests": snap["abandoned_requests"],
            "degraded_responses": snap["degraded_responses"],
            **context.ingest.counters(),
        },
        "faults": faults.snapshot() if faults is not None else [],
    }


def _exit_fault(faults: FaultInjector | None, target: str) -> None:
    """Fire a scripted mid-request crash for ``target`` if a rule matches."""
    if faults is not None:
        try:
            faults.fail("worker_exit", target)
        except InjectedFault:
            # Die without a reply so the router sees exactly what a real
            # worker death looks like.
            os._exit(_EXIT_INJECTED)


def _handle_call(
    app: FBoxApp, faults: FaultInjector | None, message: dict
) -> dict:
    path = message.get("path")
    _exit_fault(faults, str(path))
    if not isinstance(path, str) or path not in app.post_routes:
        return {
            "ok": False,
            "error": encode_error(NotFound(f"no such endpoint: POST {path}")),
        }
    request = Request(
        method="POST",
        path=path,
        body=json.dumps(message.get("payload")).encode("utf-8"),
    )
    try:
        status, document = app.run_post(request)
    except ServiceError as error:
        return {"ok": False, "error": encode_error(error)}
    except Exception as error:  # noqa: BLE001 - crosses a process boundary
        return {
            "ok": False,
            "error": {
                "status": 500,
                "kind": "internal",
                "message": str(error),
                "retryable": False,
                "retry_after": None,
                "extra": None,
            },
        }
    return {"ok": True, "status": status, "document": document}


def _handle_export(
    context: ServiceContext, faults: FaultInjector | None, message: dict
) -> dict:
    """Snapshot one dataset's migratable state for the resize engine.

    The chaos target ``/admin/export:<dataset>`` lets a ``worker_exit``
    rule kill the *source* worker mid-migration deterministically.
    """
    name = message.get("dataset")
    _exit_fault(faults, f"/admin/export:{name}")
    try:
        registry = context.registry
        registry.spec(name)  # 404 before any work
        document = {
            "dataset": name,
            "generation": registry.generation(name),
            "state": context.ingest.export_state(name),
        }
    except ServiceError as error:
        return {"ok": False, "error": encode_error(error)}
    return {"ok": True, "status": 200, "document": document}


def _handle_import(
    context: ServiceContext, faults: FaultInjector | None, message: dict
) -> dict:
    """Adopt an exported snapshot as this worker's truth for the dataset.

    The journal is replayed through the same validating decoder the public
    ingest path uses; the chaos target ``/admin/import:<dataset>`` kills
    the *destination* worker mid-migration.
    """
    name = message.get("dataset")
    _exit_fault(faults, f"/admin/import:{name}")
    try:
        registry = context.registry
        spec = registry.spec(name)
        state = message.get("state") or {}
        journal = state.get("journal") or []
        observations = decode_observations(spec.site, journal) if journal else []
        registry.adopt_observations(
            name, observations, int(message.get("generation") or 0)
        )
        context.ingest.import_state(name, state)
    except ServiceError as error:
        return {"ok": False, "error": encode_error(error)}
    return {
        "ok": True,
        "status": 200,
        "document": {"dataset": name, "generation": registry.generation(name)},
    }


def _handle_register(
    context: ServiceContext, faults: FaultInjector | None, message: dict
) -> dict:
    """Register a scenario-backed dataset spec broadcast by the front.

    The frame carries only plain JSON — dataset name, scenario name,
    canonical encoded overrides — and the spec is rebuilt locally through
    the same :func:`repro.scenarios.scenario_spec` funnel the front used,
    so both sides own byte-identical generation logic.  The chaos target
    ``/admin/register:<dataset>`` lets a ``worker_exit`` rule kill a worker
    mid-broadcast.
    """
    name = message.get("dataset")
    _exit_fault(faults, f"/admin/register:{name}")
    try:
        from ..scenarios import decode_overrides, scenario_spec

        if not isinstance(name, str) or not name:
            raise NotFound("register_dataset frame carries no dataset name")
        spec = scenario_spec(
            name,
            str(message.get("scenario") or ""),
            decode_overrides(tuple((message.get("overrides") or {}).items())),
            description=message.get("description") or None,
        )
        context.registry.register(spec)
        document = {
            "dataset": name,
            "scenario": spec.scenario,
            "generation": context.registry.generation(name),
        }
    except ServiceError as error:
        return {"ok": False, "error": encode_error(error)}
    return {"ok": True, "status": 200, "document": document}


def _serve_connection(
    sock: socket.socket,
    app: FBoxApp,
    context: ServiceContext,
    faults: FaultInjector | None,
    config: WorkerConfig,
) -> None:
    """Answer frames on one router connection until EOF (one request at a
    time per connection; the router pools connections for concurrency)."""
    try:
        while True:
            message = recv_frame(sock)
            if message is None:
                return
            op = message.get("op")
            if op == "ping":
                send_frame(sock, {"ok": True, "shard": config.index})
            elif op == "status":
                send_frame(sock, _status_document(config, context, faults))
            elif op == "call":
                send_frame(sock, _handle_call(app, faults, message))
            elif op == "export_dataset":
                send_frame(sock, _handle_export(context, faults, message))
            elif op == "import_dataset":
                send_frame(sock, _handle_import(context, faults, message))
            elif op == "register_dataset":
                send_frame(sock, _handle_register(context, faults, message))
            elif op == "shutdown":
                send_frame(sock, {"ok": True})
                os._exit(0)
            else:
                send_frame(
                    sock,
                    {
                        "ok": False,
                        "error": encode_error(
                            NotFound(f"unknown shard op {op!r}")
                        ),
                    },
                )
    except (OSError, ConnectionError, ValueError):
        pass  # the router dropped the connection; nothing to clean up
    finally:
        try:
            sock.close()
        except OSError:
            pass


def worker_main(listener: socket.socket, specs, fault_spec, config) -> None:
    """The forked child's entry point: build a private service, accept.

    ``listener`` is already bound and listening (created pre-fork so the
    router can connect before this loop starts); ``specs`` are the full
    spec tuple — the worker registers all of them so routing mistakes
    surface as wrong-shard answers in tests rather than spurious 404s, but
    only the datasets actually queried ever materialize.
    """
    faults = _rebuild_faults(fault_spec, config.exit_faults_consumed)
    app, context = _build_app(tuple(specs), faults, config)
    _logger.debug("shard %d worker up (pid=%d)", config.index, os.getpid())
    while True:
        try:
            sock, _ = listener.accept()
        except OSError:
            os._exit(0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        threading.Thread(
            target=_serve_connection,
            args=(sock, app, context, faults, config),
            daemon=True,
        ).start()
