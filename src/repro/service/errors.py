"""Service-level errors carrying HTTP status codes.

Library errors (:class:`~repro.exceptions.ReproError` subclasses) say *what*
went wrong; these say what the HTTP layer should do about it.  Handlers
raise (or map into) one of these and the server renders a structured JSON
error body — never a 500 with a traceback — for any invalid input.
"""

from __future__ import annotations

from ..exceptions import ReproError

__all__ = ["ServiceError", "BadRequest", "NotFound", "Unprocessable", "RequestTimeout"]


class ServiceError(ReproError):
    """Base class for errors the HTTP layer renders as a JSON error body."""

    status = 500
    kind = "internal"


class BadRequest(ServiceError):
    """The request envelope is malformed: bad JSON, missing or mistyped fields."""

    status = 400
    kind = "bad_request"


class NotFound(ServiceError):
    """The addressed resource (path or dataset) does not exist."""

    status = 404
    kind = "not_found"


class Unprocessable(ServiceError):
    """The request is well-formed but semantically invalid for this dataset:
    unknown dimensions, malformed group labels, members outside the domain."""

    status = 422
    kind = "unprocessable"


class RequestTimeout(ServiceError):
    """The per-request deadline elapsed before the query finished."""

    status = 503
    kind = "timeout"
