"""Service-level errors carrying HTTP status codes.

Library errors (:class:`~repro.exceptions.ReproError` subclasses) say *what*
went wrong; these say what the HTTP layer should do about it.  Handlers
raise (or map into) one of these and the server renders a structured JSON
error body — never a 500 with a traceback — for any invalid input.

Two resilience errors carry extra machinery: :class:`TooManyRequests` and
:class:`CircuitOpen` both advertise ``retry_after`` (rendered as a
``Retry-After`` header so well-behaved clients back off) and may attach an
``extra`` mapping that is folded into the JSON error object (breaker state,
queue limits) so operators can see *why* from the response alone.
"""

from __future__ import annotations

from typing import Mapping

from ..exceptions import ReproError

__all__ = [
    "ServiceError",
    "BadRequest",
    "NotFound",
    "Unprocessable",
    "RequestTimeout",
    "TooManyRequests",
    "CircuitOpen",
    "ShuttingDown",
]


class ServiceError(ReproError):
    """Base class for errors the HTTP layer renders as a JSON error body."""

    status = 500
    kind = "internal"
    retry_after: float | None = None
    """Seconds the client should wait before retrying (``Retry-After``)."""

    extra: Mapping[str, object] | None = None
    """Structured context merged into the JSON error object."""


class BadRequest(ServiceError):
    """The request envelope is malformed: bad JSON, missing or mistyped fields."""

    status = 400
    kind = "bad_request"


class NotFound(ServiceError):
    """The addressed resource (path or dataset) does not exist."""

    status = 404
    kind = "not_found"


class Unprocessable(ServiceError):
    """The request is well-formed but semantically invalid for this dataset:
    unknown dimensions, malformed group labels, members outside the domain."""

    status = 422
    kind = "unprocessable"


class RequestTimeout(ServiceError):
    """The per-request deadline elapsed before the query finished."""

    status = 503
    kind = "timeout"


class TooManyRequests(ServiceError):
    """Admission control shed the request: pool and queue are both full."""

    status = 429
    kind = "overloaded"

    def __init__(
        self,
        message: str,
        retry_after: float = 1.0,
        extra: Mapping[str, object] | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.extra = extra


class ShuttingDown(ServiceError):
    """The service received SIGTERM and is draining: requests already
    admitted (or queued) complete, but new arrivals are turned away so the
    process can exit.  Rendered with ``Connection: close`` so keep-alive
    clients re-resolve to a healthy replica instead of re-using a socket
    into a dying process."""

    status = 503
    kind = "shutting_down"
    retry_after = 1.0


class CircuitOpen(ServiceError):
    """The dataset's circuit breaker is open: its load/build keeps failing,
    so the expensive work is quarantined until a half-open probe succeeds."""

    status = 503
    kind = "circuit_open"

    def __init__(
        self,
        message: str,
        retry_after: float | None = None,
        extra: Mapping[str, object] | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.extra = extra
