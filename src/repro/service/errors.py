"""Service-level errors carrying HTTP status codes.

Library errors (:class:`~repro.exceptions.ReproError` subclasses) say *what*
went wrong; these say what the HTTP layer should do about it.  Handlers
raise (or map into) one of these and the server renders a structured JSON
error body — never a 500 with a traceback — for any invalid input.

Two resilience errors carry extra machinery: :class:`TooManyRequests` and
:class:`CircuitOpen` both advertise ``retry_after`` (rendered as a
``Retry-After`` header so well-behaved clients back off) and may attach an
``extra`` mapping that is folded into the JSON error object (breaker state,
queue limits) so operators can see *why* from the response alone.

Every error carries a stable machine ``code`` (the class attribute ``kind``;
``code`` is the name the ``/v1`` envelope uses, ``kind`` survives as a
deprecated alias in rendered bodies) and a ``retryable`` flag that encodes
the retry contract: 429/503 conditions are transient and worth retrying,
validation errors (400/404/422) never are.  :func:`error_catalog` exposes
the full code table for ``GET /v1/schema`` and the README.
"""

from __future__ import annotations

from typing import Mapping

from ..exceptions import ReproError

__all__ = [
    "ServiceError",
    "BadRequest",
    "NotFound",
    "Gone",
    "Forbidden",
    "Unprocessable",
    "Conflict",
    "DatasetExists",
    "RequestTimeout",
    "TooManyRequests",
    "CircuitOpen",
    "ShardUnavailable",
    "ShardResizing",
    "ShuttingDown",
    "error_catalog",
]


class ServiceError(ReproError):
    """Base class for errors the HTTP layer renders as a JSON error body."""

    status = 500
    kind = "internal"
    retryable = False
    """Whether a client may expect a later identical retry to succeed."""

    retry_after: float | None = None
    """Seconds the client should wait before retrying (``Retry-After``)."""

    extra: Mapping[str, object] | None = None
    """Structured context merged into the JSON error object."""

    @property
    def code(self) -> str:
        """The machine code of this error (alias of ``kind``)."""
        return self.kind


class BadRequest(ServiceError):
    """The request envelope is malformed: bad JSON, missing or mistyped fields."""

    status = 400
    kind = "bad_request"


class NotFound(ServiceError):
    """The addressed resource (path or dataset) does not exist."""

    status = 404
    kind = "not_found"


class Gone(ServiceError):
    """The path existed once but was retired: legacy unversioned routes
    after the /v1 migration.  The error body carries a ``v1_path`` pointer
    to the versioned equivalent.  Never retryable — the route will not come
    back; the client must switch paths."""

    status = 410
    kind = "gone"

    def __init__(self, message: str, extra: Mapping[str, object] | None = None) -> None:
        super().__init__(message)
        self.extra = extra


class Forbidden(ServiceError):
    """The request addresses an admin endpoint without a valid admin token.

    Only raised when the operator armed ``--admin-token``; an unarmed
    instance leaves admin endpoints open for local development.  Never
    retryable: the same credentials will be rejected forever."""

    status = 403
    kind = "forbidden"


class Unprocessable(ServiceError):
    """The request is well-formed but semantically invalid for this dataset:
    unknown dimensions, malformed group labels, members outside the domain."""

    status = 422
    kind = "unprocessable"


class Conflict(ServiceError):
    """The request contradicts already-applied state: an ingest batch whose
    ``sequence`` is at or below the dataset's applied high-water mark but
    whose ``batch_id`` has aged out of the idempotency ledger.  Re-applying
    it would double-count observations, and the original result is gone, so
    the only safe answer is an explicit refusal.  Not retryable: the same
    batch will conflict forever."""

    status = 409
    kind = "batch_conflict"


class DatasetExists(ServiceError):
    """``POST /v1/datasets`` named a dataset that is already registered.

    Runtime registration never silently replaces a live dataset — replacing
    ground truth under running queries is a resize/migration concern, not a
    side effect of a name collision.  Not retryable: the same name will
    collide until an operator retires the existing dataset."""

    status = 409
    kind = "dataset_exists"


class RequestTimeout(ServiceError):
    """The per-request deadline elapsed before the query finished."""

    status = 503
    kind = "timeout"
    retryable = True


class TooManyRequests(ServiceError):
    """Admission control shed the request: pool and queue are both full."""

    status = 429
    kind = "overloaded"
    retryable = True

    def __init__(
        self,
        message: str,
        retry_after: float = 1.0,
        extra: Mapping[str, object] | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.extra = extra


class ShuttingDown(ServiceError):
    """The service received SIGTERM and is draining: requests already
    admitted (or queued) complete, but new arrivals are turned away so the
    process can exit.  Rendered with ``Connection: close`` so keep-alive
    clients re-resolve to a healthy replica instead of re-using a socket
    into a dying process."""

    status = 503
    kind = "shutting_down"
    retryable = True
    retry_after = 1.0


class CircuitOpen(ServiceError):
    """The dataset's circuit breaker is open: its load/build keeps failing,
    so the expensive work is quarantined until a half-open probe succeeds."""

    status = 503
    kind = "circuit_open"
    retryable = True

    def __init__(
        self,
        message: str,
        retry_after: float | None = None,
        extra: Mapping[str, object] | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.extra = extra


class ShardUnavailable(CircuitOpen):
    """The worker process owning this dataset's shard is down.

    A :class:`CircuitOpen` subclass on purpose: the degraded-answer path and
    quarantine reporting treat a dead shard exactly like an open dataset
    breaker — the dataset is temporarily unservable and a retry after the
    shard restarts will succeed — but the distinct ``code`` tells clients
    *which* layer failed."""

    kind = "shard_unavailable"


class ShardResizing(CircuitOpen):
    """The dataset is mid-migration during a live shard-pool resize.

    Raised for requests that cannot be served consistently while the
    dataset's state is being copied between workers: the routing flip is
    atomic per dataset, so the window is bounded by one dataset's state
    size.  A :class:`CircuitOpen` subclass so the degraded-answer path can
    serve stale reads when ``allow_stale`` is set, and so clients retry
    after ``Retry-After`` exactly like any other transient 503."""

    kind = "shard_resizing"


_CATALOG = (
    ("bad_request", BadRequest, "request envelope is malformed (bad JSON, missing or mistyped fields)"),
    ("not_found", NotFound, "no such endpoint or dataset"),
    ("gone", Gone, "legacy unversioned path retired; follow the error's v1_path pointer"),
    ("forbidden", Forbidden, "admin endpoint called without a valid admin token"),
    ("unprocessable", Unprocessable, "well-formed but semantically invalid for this dataset"),
    ("batch_conflict", Conflict, "ingest batch was already applied but its result aged out of the idempotency ledger"),
    ("dataset_exists", DatasetExists, "runtime dataset registration collided with an existing name"),
    ("overloaded", TooManyRequests, "admission control shed the request; honor Retry-After"),
    ("timeout", RequestTimeout, "the per-request deadline elapsed"),
    ("circuit_open", CircuitOpen, "the dataset's breaker is open after repeated load/build failures"),
    ("shard_unavailable", ShardUnavailable, "the worker process owning the dataset's shard is down"),
    ("shard_resizing", ShardResizing, "the dataset is migrating between workers during a live shard-pool resize"),
    ("shutting_down", ShuttingDown, "the instance is draining for shutdown"),
    ("internal", ServiceError, "unexpected server-side failure"),
)


def error_catalog() -> list[dict]:
    """The machine-readable error-code table (drives ``/v1/schema``).

    One entry per code: HTTP status, whether a retry may succeed, and a
    one-line description.  Generated from the exception classes themselves
    so the schema can never drift from what the service actually raises.
    """
    return [
        {
            "code": code,
            "status": cls.status,
            "retryable": cls.retryable,
            "description": description,
        }
        for code, cls, description in _CATALOG
    ]
