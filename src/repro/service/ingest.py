"""The live-ingest subsystem: ``POST /observations`` and ``GET /trends``.

The paper's data is a crawl *protocol* — repeated queries against live
sites — so the service accepts the same shape continuously: a batch of new
``(query, location)`` rankings lands as one ``POST /observations``, is
schema-validated against :mod:`repro.data.schema`, and is folded into the
live dataset **incrementally** (only the dirty unfairness-cube columns are
recomputed and only the dirty posting lists re-sorted — see
:meth:`repro.core.fbox.FBox.apply_observations`).  The dataset's generation
counter bumps last, so the LRU result cache and the degraded-answer store
invalidate for free and no pre-ingest answer can ever carry the post-ingest
generation tag.

On top of the write path sits the monitoring surface the paper's
longitudinal framing implies: every ingest records the recomputed cell
values into a generation-ringed history, ``GET /v1/trends`` replays one
cube cell's values across generations, and a configurable alert threshold
counts crossings into ``fbox_fairness_alerts_total`` and the ``/datasets``
listing.

Idempotency: a client-supplied ``batch_id`` is remembered per dataset, and
a replay (e.g. a retry after a dropped connection) returns the stored
result with ``"replayed": true`` instead of double-applying the batch.  The
ledger is a bounded FIFO, so on its own an old ``batch_id`` replayed after
eviction would be silently re-applied; a client-supplied monotonically
increasing ``sequence`` closes that hole — the manager tracks the highest
applied sequence per dataset, and an unknown ``batch_id`` at or below the
high-water mark is rejected with 409 ``batch_conflict`` instead of
double-counting its observations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Mapping

from ..core.groups import group_lattice
from ..core.rankings import RankedList
from ..core.unfairness import MarketplaceUnfairness, SearchEngineUnfairness
from ..data.schema import MarketplaceObservation, SearchObservation
from ..exceptions import DataError, ReproError
from .encoding import parse_group
from .errors import BadRequest, Conflict, ServiceError, Unprocessable

__all__ = [
    "IngestManager",
    "decode_observations",
    "encode_observation",
    "handle_observations",
    "handle_trends",
    "trends_document",
]

_MAX_INGEST_OBSERVATIONS = 256
"""Upper bound on observations per ingest batch (one batch applies under
the dataset's build lock, so unbounded batches would stall readers)."""

_DEFAULT_HISTORY = 64
"""Generations of trend history retained per dataset."""

_LEDGER_CAPACITY = 256
"""Remembered ``batch_id`` results per dataset (FIFO eviction)."""


# ----------------------------------------------------------------------
# Payload decoding (schema validation)
# ----------------------------------------------------------------------


def _require_object(payload) -> Mapping:
    if not isinstance(payload, Mapping):
        raise BadRequest(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _string_field(payload: Mapping, name: str, required: bool = True) -> str | None:
    value = payload.get(name)
    if value is None:
        if required:
            raise BadRequest(f"missing required field {name!r}")
        return None
    if not isinstance(value, str) or not value:
        raise BadRequest(f"field {name!r} must be a non-empty string")
    return value


def _ranked_list(where: str, items, scores=None) -> RankedList:
    if not isinstance(items, (list, tuple)) or not all(
        isinstance(item, str) for item in items
    ):
        raise BadRequest(f"{where} must be a JSON array of strings")
    if scores is not None:
        if not isinstance(scores, Mapping):
            raise BadRequest(f"scores in {where} must be a JSON object")
        scores = {str(key): float(value) for key, value in scores.items()}
    try:
        return RankedList(items=tuple(items), scores=scores)
    except ReproError as error:
        raise Unprocessable(f"{where}: {error}") from error


def _decode_marketplace(position: int, item: Mapping) -> MarketplaceObservation:
    query = _string_field(item, "query")
    location = _string_field(item, "location")
    ranking = _ranked_list(
        f"observations[{position}].ranking",
        item.get("ranking"),
        item.get("scores"),
    )
    try:
        return MarketplaceObservation(query=query, location=location, ranking=ranking)
    except ReproError as error:
        raise Unprocessable(f"observations[{position}]: {error}") from error


def _decode_search(position: int, item: Mapping) -> SearchObservation:
    query = _string_field(item, "query")
    location = _string_field(item, "location")
    results = item.get("results_by_user")
    if not isinstance(results, Mapping) or not results:
        raise BadRequest(
            f"observations[{position}].results_by_user must be a non-empty "
            "JSON object of user → result list"
        )
    decoded = {
        str(user): _ranked_list(
            f"observations[{position}].results_by_user[{user!r}]", items
        )
        for user, items in results.items()
    }
    try:
        return SearchObservation(
            query=query, location=location, results_by_user=decoded
        )
    except ReproError as error:
        raise Unprocessable(f"observations[{position}]: {error}") from error


def decode_observations(site: str, items) -> list:
    """Validate a batch of raw observation payloads for one site kind.

    Envelope problems (wrong types, missing fields) raise
    :class:`BadRequest`; semantic ones (duplicate ranks, empty rankings)
    raise :class:`Unprocessable`, matching the service-wide policy.
    """
    if not isinstance(items, (list, tuple)):
        raise BadRequest(
            "field 'observations' must be a JSON array of observation objects"
        )
    if not items:
        raise BadRequest("field 'observations' is empty; send at least one")
    if len(items) > _MAX_INGEST_OBSERVATIONS:
        raise BadRequest(
            f"batch exceeds {_MAX_INGEST_OBSERVATIONS} observations "
            f"(got {len(items)})"
        )
    decode = _decode_marketplace if site == "taskrabbit" else _decode_search
    decoded = []
    for position, item in enumerate(items):
        if not isinstance(item, Mapping):
            raise BadRequest(
                f"observations[{position}] must be a JSON object, "
                f"got {type(item).__name__}"
            )
        decoded.append(decode(position, item))
    return decoded


def encode_observation(observation) -> dict:
    """The inverse of :func:`decode_observations` for one observation.

    Produces the exact ``POST /observations`` item shape, so a journal of
    these payloads can be shipped over the shard frame protocol (plain
    JSON) and replayed through the same validating decoder on the other
    side — the wire format for dataset state migration is the public API
    format, not a private pickle.
    """
    if isinstance(observation, MarketplaceObservation):
        payload: dict = {
            "query": observation.query,
            "location": observation.location,
            "ranking": list(observation.ranking.items),
        }
        if observation.ranking.scores is not None:
            payload["scores"] = dict(observation.ranking.scores)
        return payload
    return {
        "query": observation.query,
        "location": observation.location,
        "results_by_user": {
            user: list(ranking.items)
            for user, ranking in observation.results_by_user.items()
        },
    }


# ----------------------------------------------------------------------
# The manager: idempotency ledger, trend history, alerts
# ----------------------------------------------------------------------


class IngestManager:
    """Per-dataset write-path state: batch ledger, trend ring, alerts.

    One instance lives on the :class:`~repro.service.handlers.ServiceContext`
    (each shard worker owns its own, covering the datasets it serves).
    Ingests for one dataset serialize on a per-dataset lock so the
    check-ledger → apply → record sequence is atomic even under concurrent
    replays of the same ``batch_id``.
    """

    def __init__(
        self,
        alert_threshold: float | None = None,
        history: int = _DEFAULT_HISTORY,
    ) -> None:
        self.alert_threshold = alert_threshold
        self.history = history
        self._lock = threading.RLock()
        self._dataset_locks: dict[str, threading.RLock] = {}
        self._ledgers: dict[str, OrderedDict[str, dict]] = {}
        # Latest accepted observation per (query, location), re-encoded to
        # the API payload shape.  Replaying the journal onto the dataset's
        # deterministic base load reproduces the live state exactly — this
        # is what a shard migration ships for the dict core (the columnar
        # core additionally hands over its shared-memory segments in O(1)).
        self._journals: dict[str, OrderedDict[tuple[str, str], dict]] = {}
        self._rings: dict[str, deque] = {}
        self._alerts: dict[str, int] = {}
        self._batches: dict[str, int] = {}
        self._observations = 0
        # Replays by kind: "ledger" = answered from the stored result;
        # "conflict" = an evicted-but-older sequence rejected with 409.
        self._replays = {"ledger": 0, "conflict": 0}
        self._high_water: dict[str, int] = {}

    def _dataset_lock(self, name: str) -> threading.RLock:
        with self._lock:
            lock = self._dataset_locks.get(name)
            if lock is None:
                lock = self._dataset_locks[name] = threading.RLock()
            return lock

    # -- the write path -------------------------------------------------

    def ingest(
        self,
        registry,
        name: str,
        batch_id: str | None,
        observations: list,
        sequence: int | None = None,
    ) -> dict:
        """Apply one decoded batch; idempotent per ``(dataset, batch_id)``.

        ``sequence`` (client-supplied, strictly increasing per dataset)
        guards the idempotency ledger's bounded depth: an unknown
        ``batch_id`` whose sequence is at or below the dataset's applied
        high-water mark must be a replay of an evicted batch — re-applying
        it would double-count, so it is rejected with 409
        :class:`~repro.service.errors.Conflict` instead.
        """
        with self._dataset_lock(name):
            with self._lock:
                ledger = self._ledgers.setdefault(name, OrderedDict())
                stored = ledger.get(batch_id) if batch_id else None
                if stored is not None:
                    self._replays["ledger"] += 1
                    return {**stored, "replayed": True}
                high_water = self._high_water.get(name)
                if (
                    sequence is not None
                    and high_water is not None
                    and sequence <= high_water
                ):
                    self._replays["conflict"] += 1
                    raise Conflict(
                        f"batch sequence {sequence} for dataset {name!r} is at "
                        f"or below the applied high-water mark {high_water} and "
                        f"its batch_id is no longer in the idempotency ledger; "
                        "re-applying would double-count its observations"
                    )
            try:
                outcome = registry.apply_observations(name, observations)
            except DataError as error:
                # Semantic problems the decode layer cannot see (rankings
                # referencing workers/users outside the dataset's roster).
                raise Unprocessable(str(error)) from error
            snapshot = self._record(registry, name, batch_id, outcome)
            document = {
                "kind": "ingest",
                "dataset": name,
                "batch_id": batch_id,
                **({"sequence": sequence} if sequence is not None else {}),
                "generation": outcome["generation"],
                "accepted": len(observations),
                "touched_pairs": [list(pair) for pair in outcome["touched"]],
                "cells_recomputed": outcome["cells_recomputed"],
                "lists_rebuilt": outcome["lists_rebuilt"],
                "alerts": snapshot["alerts"],
            }
            with self._lock:
                journal = self._journals.setdefault(name, OrderedDict())
                for observation in observations:
                    key = (observation.query, observation.location)
                    journal.pop(key, None)
                    journal[key] = encode_observation(observation)
                self._batches[name] = self._batches.get(name, 0) + 1
                self._observations += len(observations)
                if sequence is not None:
                    previous = self._high_water.get(name)
                    if previous is None or sequence > previous:
                        self._high_water[name] = sequence
                if batch_id:
                    ledger[batch_id] = document
                    while len(ledger) > _LEDGER_CAPACITY:
                        ledger.popitem(last=False)
            return {**document, "replayed": False}

    def _record(
        self, registry, name: str, batch_id: str | None, outcome: dict
    ) -> dict:
        """Snapshot the recomputed cells into the trend ring; count alerts.

        Values come from each measure's engine (stateless per-cell, so this
        costs only ``|groups| × |touched pairs|`` per measure).  The ring
        holds one entry per ingest generation.
        """
        spec = registry.spec(name)
        dataset = registry.dataset(name)
        fboxes = registry.live_fboxes(name)
        measures = sorted(fboxes) or [spec.default_measure]
        groups = group_lattice(registry.schema)
        values: dict[str, dict] = {}
        alerts = 0
        for measure in measures:
            if measure in fboxes:
                engine = fboxes[measure].engine
            elif spec.site == "taskrabbit":
                engine = MarketplaceUnfairness(dataset, registry.schema, measure=measure)
            else:
                engine = SearchEngineUnfairness(dataset, registry.schema, measure=measure)
            cells: dict[tuple[str, str, str], float | None] = {}
            for query, location in outcome["touched"]:
                for group in groups:
                    if engine.defined_for(group, query, location):
                        value = float(engine.unfairness(group, query, location))
                    else:
                        value = None
                    cells[(str(group), query, location)] = value
                    if (
                        value is not None
                        and self.alert_threshold is not None
                        and value >= self.alert_threshold
                    ):
                        alerts += 1
            values[measure] = cells
        entry = {
            "generation": outcome["generation"],
            "batch_id": batch_id,
            "values": values,
            "alerts": alerts,
        }
        with self._lock:
            ring = self._rings.setdefault(name, deque(maxlen=self.history))
            ring.append(entry)
            self._alerts[name] = self._alerts.get(name, 0) + alerts
        return entry

    # -- state migration (live shard-pool resize) ------------------------

    @staticmethod
    def _encode_ring_entry(entry: dict) -> dict:
        # Trend cells are keyed by (group, query, location) tuples, which
        # JSON cannot express as object keys; flatten to [g, q, l, value]
        # rows for the wire.
        return {
            "generation": entry["generation"],
            "batch_id": entry["batch_id"],
            "alerts": entry["alerts"],
            "values": {
                measure: [
                    [group, query, location, value]
                    for (group, query, location), value in cells.items()
                ]
                for measure, cells in entry["values"].items()
            },
        }

    def export_state(self, name: str) -> dict:
        """A JSON-safe snapshot of one dataset's full write-path state.

        Everything a destination worker needs so the move is invisible to
        clients: the observation journal (to rebuild the dataset), the
        idempotency ledger and applied high-water sequence (so replay
        protection survives the move), the trend ring, and the alert and
        batch counts.  Taken under the dataset's ingest lock, so the
        snapshot can never interleave with a concurrent apply.
        """
        with self._dataset_lock(name):
            with self._lock:
                ledger = self._ledgers.get(name) or OrderedDict()
                return {
                    "journal": [
                        dict(payload)
                        for payload in self._journals.get(name, OrderedDict()).values()
                    ],
                    "ledger": [[batch_id, dict(doc)] for batch_id, doc in ledger.items()],
                    "high_water": self._high_water.get(name),
                    "ring": [
                        self._encode_ring_entry(entry)
                        for entry in self._rings.get(name, ())
                    ],
                    "alerts": self._alerts.get(name, 0),
                    "batches": self._batches.get(name, 0),
                }

    def import_state(self, name: str, state: Mapping) -> None:
        """Adopt an exported snapshot, wholesale replacing local state.

        Replacement (not merge) is deliberate: after an N→M→N round trip a
        worker may still hold the dataset's pre-departure state, and merging
        would resurrect ledger entries and trend points the source already
        evicted.  The imported snapshot *is* the dataset's truth.
        """
        journal: OrderedDict[tuple[str, str], dict] = OrderedDict()
        for item in state.get("journal") or ():
            journal[(item.get("query"), item.get("location"))] = dict(item)
        ledger: OrderedDict[str, dict] = OrderedDict(
            (batch_id, dict(doc)) for batch_id, doc in (state.get("ledger") or ())
        )
        ring: deque = deque(maxlen=self.history)
        for entry in state.get("ring") or ():
            ring.append(
                {
                    "generation": entry["generation"],
                    "batch_id": entry["batch_id"],
                    "alerts": entry["alerts"],
                    "values": {
                        measure: {
                            (group, query, location): value
                            for group, query, location, value in cells
                        }
                        for measure, cells in entry["values"].items()
                    },
                }
            )
        with self._dataset_lock(name):
            with self._lock:
                self._journals[name] = journal
                self._ledgers[name] = ledger
                self._rings[name] = ring
                high_water = state.get("high_water")
                if high_water is None:
                    self._high_water.pop(name, None)
                else:
                    self._high_water[name] = int(high_water)
                self._alerts[name] = int(state.get("alerts") or 0)
                self._batches[name] = int(state.get("batches") or 0)

    # -- the read surfaces ----------------------------------------------

    def trends(
        self, name: str, measure: str, group: str, query: str, location: str
    ) -> list[dict]:
        """Per-generation values of one cube cell, oldest first.

        A generation appears only when the requested cell was recomputed by
        that ingest; ``value`` is ``null`` when the cell was undefined then.
        """
        key = (group, query, location)
        points = []
        with self._lock:
            ring = list(self._rings.get(name, ()))
        for entry in ring:
            cells = entry["values"].get(measure)
            if cells is None or key not in cells:
                continue
            value = cells[key]
            points.append(
                {
                    "generation": entry["generation"],
                    "batch_id": entry["batch_id"],
                    "value": value,
                    "alert": (
                        value is not None
                        and self.alert_threshold is not None
                        and value >= self.alert_threshold
                    ),
                }
            )
        return points

    def dataset_facts(self, name: str) -> dict:
        """The ``/datasets`` overlay: alerting config plus write-path counts."""
        with self._lock:
            return {
                "alert_threshold": self.alert_threshold,
                "alerts": self._alerts.get(name, 0),
                "ingest_batches": self._batches.get(name, 0),
                "trend_generations": len(self._rings.get(name, ())),
            }

    def counters(self) -> dict[str, int]:
        """Totals for the /metrics exposition (summed across datasets)."""
        with self._lock:
            return {
                "ingest_batches": sum(self._batches.values()),
                "ingest_observations": self._observations,
                "ingest_replays_ledger": self._replays["ledger"],
                "ingest_replays_conflict": self._replays["conflict"],
                "fairness_alerts": sum(self._alerts.values()),
            }


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------


def handle_observations(context, payload) -> dict:
    """``POST /observations`` — fold a batch of new rankings into a dataset.

    Under sharding this runs on the owning worker (the front routes the
    payload over the frame protocol and syncs its generation counter from
    the response).
    """
    payload = _require_object(payload)
    name = _string_field(payload, "dataset")
    batch_id = _string_field(payload, "batch_id", required=False)
    sequence = payload.get("sequence")
    if sequence is not None and (
        isinstance(sequence, bool) or not isinstance(sequence, int) or sequence < 0
    ):
        raise BadRequest("field 'sequence' must be a non-negative integer")
    spec = context.registry.spec(name)  # 404 before any decoding work
    observations = decode_observations(spec.site, payload.get("observations"))
    return context.ingest.ingest(
        context.registry, name, batch_id, observations, sequence=sequence
    )


def trends_document(context, payload) -> dict:
    """The ``/trends`` answer; shared by the GET route and worker dispatch."""
    params = _require_object(payload if payload is not None else {})
    name = _string_field(params, "dataset")
    router = context.router
    if router is not None:
        return router.execute("/trends", dict(params), router.request_timeout)
    spec = context.registry.spec(name)
    measure = (
        _string_field(params, "measure", required=False) or spec.default_measure
    ).lower()
    group_text = _string_field(params, "group")
    query = _string_field(params, "query")
    location = _string_field(params, "location")
    try:
        group = parse_group(group_text)
    except ServiceError:
        raise
    except ReproError as error:
        raise Unprocessable(str(error)) from error
    points = context.ingest.trends(name, measure, str(group), query, location)
    return {
        "kind": "trends",
        "dataset": name,
        "measure": measure,
        "group": str(group),
        "query": query,
        "location": location,
        "alert_threshold": context.ingest.alert_threshold,
        "points": points,
    }


def handle_trends(context, payload=None) -> tuple[int, dict]:
    """``GET /trends`` — one cube cell's measure values across generations."""
    return 200, trends_document(context, payload)
