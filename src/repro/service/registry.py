"""The dataset registry: load once, share F-Boxes across requests.

A :class:`DatasetSpec` describes how to obtain one named dataset (load a
saved JSONL file or synthesize from a seed); the :class:`DatasetRegistry`
materializes each dataset **once** and hands out one shared
:class:`~repro.core.fbox.FBox` per ``(dataset, measure)`` pair.  Both levels
use double-checked locking **per dataset**: under concurrent first-touch
traffic every dataset is built by exactly one thread and every cube/index
family exactly once (the FBox itself locks its lazy builds), while builds of
*distinct* datasets proceed concurrently — the slow work never holds the
registry-wide lock, which only guards the bookkeeping dicts.

Every dataset additionally sits behind a per-dataset
:class:`~repro.service.resilience.CircuitBreaker`: a loader or F-Box build
that keeps crashing quarantines the dataset (requests get an instant
:class:`~repro.service.errors.CircuitOpen` instead of re-running the
expensive failing work), and a half-open probe retries after a backoff.
Validation failures (bad measure → 422) deliberately do **not** count
against the breaker — only genuine load/build crashes do.  An optional
:class:`~repro.service.faults.FaultInjector` is consulted right before the
loader runs, which is how chaos tests script "fails twice then recovers"
datasets deterministically.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..core.attributes import default_schema
from ..core.colstore import ColumnarFBox, SegmentSpace
from ..core.fbox import FBox
from ..core.measures.base import default_measure_for_site
from ..data.io import load_marketplace_dataset, load_search_dataset
from ..exceptions import ReproError
from .errors import NotFound, ServiceError, Unprocessable
from .faults import FaultInjector
from .resilience import CLOSED, BreakerConfig, CircuitBreaker

__all__ = [
    "DatasetSpec",
    "DatasetRegistry",
    "default_registry",
    "SMALL_CITIES",
    "CORES",
]

CORES = ("dict", "columnar")
"""The two interchangeable storage cores; ``dict`` is the reference one."""


def _default_namespace() -> str:
    return f"{os.getpid():x}{os.urandom(4).hex()}"

_SITES = ("taskrabbit", "google")

SMALL_CITIES = (
    "Birmingham, UK",
    "Oklahoma City, OK",
    "Chicago, IL",
    "San Francisco, CA",
    "Boston, MA",
    "Seattle, WA",
)
"""Reduced crawl scope used by ``--scope small`` for fast boots."""


@dataclass(frozen=True)
class DatasetSpec:
    """How to obtain one named dataset.

    Parameters
    ----------
    name:
        Registry key, used as the ``dataset`` field of every request.
    site:
        ``"taskrabbit"`` (marketplace) or ``"google"`` (search engine);
        selects the FBox constructor and the default measure.
    loader:
        Zero-argument callable returning the dataset object.  Called at most
        once per registry.
    default_measure:
        Measure used when a request omits one; defaults to whichever
        registered measure declares itself ``default_for`` the site (see
        :func:`repro.core.measures.base.default_measure_for_site`).
    description:
        One line for the ``/datasets`` listing.
    scenario / overrides:
        Set when the spec was built from a named scenario (``repro generate
        --scenario``, ``POST /v1/datasets``): the preset name and the
        canonical ``(key, json_value)`` override pairs.  Plain JSON-safe
        strings on purpose — a sharded front broadcasts them over the frame
        protocol and each worker rebuilds the identical spec locally (see
        :func:`repro.scenarios.scenario_spec`).  Empty for file- or
        closure-backed specs.
    """

    name: str
    site: str
    loader: Callable[[], object] = field(compare=False)
    default_measure: str = ""
    description: str = ""
    scenario: str = ""
    overrides: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.site not in _SITES:
            raise ReproError(f"site must be one of {_SITES}, got {self.site!r}")
        if not self.default_measure:
            object.__setattr__(
                self, "default_measure", default_measure_for_site(self.site)
            )


class DatasetRegistry:
    """Thread-safe home of datasets and their shared F-Boxes."""

    def __init__(
        self,
        schema=None,
        breaker_config: BreakerConfig | None = None,
        faults: FaultInjector | None = None,
        clock=time.monotonic,
        core: str = "dict",
        namespace: str | None = None,
        owns_segments: bool = True,
    ) -> None:
        if core not in CORES:
            raise ReproError(f"core must be one of {CORES}, got {core!r}")
        self.schema = schema if schema is not None else default_schema()
        self.breaker_config = (
            breaker_config if breaker_config is not None else BreakerConfig()
        )
        self.faults = faults
        self._clock = clock
        self.core = core
        self._namespace = namespace
        self._segments: SegmentSpace | None = None
        # Shard workers publish into the front's namespace but must not
        # sweep it — the front owns end-of-life cleanup for everyone.
        self._owns_segments = owns_segments
        self._specs: dict[str, DatasetSpec] = {}
        self._datasets: dict[str, object] = {}
        # Migrated-in observations awaiting materialization: a shard-resize
        # import on a worker that never loaded the dataset stashes the
        # journal here (latest per (query, location)), and ``dataset()``
        # folds it in right after the base loader runs — the import itself
        # stays O(journal) instead of forcing an eager build.
        self._pending: dict[str, dict[tuple[str, str], object]] = {}
        self._fboxes: dict[tuple[str, str], FBox] = {}
        self._generations: dict[str, int] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._building: set[str] = set()
        # The global lock only guards the dicts above (cheap, constant-time
        # mutations).  Loads and F-Box builds — the slow work — serialize on
        # a per-dataset lock instead, so builds of *distinct* datasets run
        # concurrently.  Lock order is always dataset lock → global lock.
        self._lock = threading.RLock()
        self._dataset_locks: dict[str, threading.RLock] = {}

    def enable_columnar(self, namespace: str | None = None) -> None:
        """Switch this registry to the columnar core (before any F-Box build).

        ``namespace`` joins an existing segment space (the sharded front
        hands every worker its token); omitted, a fresh private one is
        generated on first use.
        """
        self.core = "columnar"
        if namespace is not None:
            self._namespace = namespace
            self._segments = None

    @property
    def segments(self) -> SegmentSpace | None:
        """The shared-memory segment space (columnar core only)."""
        if self.core != "columnar":
            return None
        with self._lock:
            if self._segments is None:
                if self._namespace is None:
                    self._namespace = _default_namespace()
                self._segments = SegmentSpace(self._namespace)
            return self._segments

    @property
    def namespace(self) -> str | None:
        """The segment namespace token (None until the space exists)."""
        return self._namespace

    def close(self) -> None:
        """Release owned shared-memory segments (no-op for the dict core)."""
        with self._lock:
            space = self._segments
        if space is not None and self._owns_segments:
            space.close()

    def _dataset_lock(self, name: str) -> threading.RLock:
        """The build lock for one dataset (created on first use, kept
        forever — re-registration must reuse it so an in-flight build of the
        old generation and the first build of the new one never interleave)."""
        with self._lock:
            lock = self._dataset_locks.get(name)
            if lock is None:
                lock = self._dataset_locks[name] = threading.RLock()
            return lock

    def register(self, spec: DatasetSpec) -> None:
        """Add (or replace) a dataset spec; drops any stale materializations.

        Each (re-)registration bumps the dataset's generation counter, which
        the service folds into result-cache keys so answers computed against
        a replaced dataset can never be served again (ROADMAP: cache
        invalidation on mid-flight re-registration).
        """
        # Wait out any in-flight build of the old generation (dataset lock)
        # before swapping the spec, so a stale build can never land *after*
        # its dataset was replaced.  Builds of other datasets are unaffected.
        with self._dataset_lock(spec.name):
            replacing = self.generation(spec.name) > 0
            if replacing and self.core == "columnar":
                # Published segments describe the *old* dataset; a cold
                # attach against the replacement must miss, not adopt them.
                space = self.segments
                if space is not None:
                    space.clear(dataset=spec.name)
            with self._lock:
                self._specs[spec.name] = spec
                self._datasets.pop(spec.name, None)
                for key in [k for k in self._fboxes if k[0] == spec.name]:
                    del self._fboxes[key]
                self._generations[spec.name] = (
                    self._generations.get(spec.name, 0) + 1
                )
                # A fresh spec deserves a fresh health record.
                self._breakers.pop(spec.name, None)

    def generation(self, name: str) -> int:
        """How many times ``name`` has been registered (0 when never)."""
        with self._lock:
            return self._generations.get(name, 0)

    def sync_generation(self, name: str, generation: int) -> None:
        """Raise ``name``'s generation to match a remote counter.

        Under sharding the owning worker applies ingests against its private
        registry; the front calls this after a routed write so its own
        ``/datasets`` listing reports the live generation.  Monotonic: a
        stale or replayed report never lowers the counter.
        """
        with self._lock:
            if generation > self._generations.get(name, 0):
                self._generations[name] = generation

    def apply_observations(self, name: str, observations: list) -> dict:
        """Fold already-decoded observations into a live dataset.

        Runs entirely under the dataset's build lock: the dataset is
        upserted in place, every live F-Box for ``name`` gets an incremental
        delta (dirty cube columns + dirty posting lists only), and the
        generation counter is bumped **last** so no answer computed against
        the pre-ingest state can ever be tagged with the post-ingest
        generation.  Returns the new generation, the touched pairs, and the
        delta-work counters.
        """
        self.spec(name)  # 404 before any work
        with self._dataset_lock(name):
            dataset = self.dataset(name)
            touched = dataset.upsert_observations(observations)
            delta = {"cells_recomputed": 0, "lists_rebuilt": 0}
            live = self.live_fboxes(name)
            for fbox in live.values():
                stats = fbox.apply_observations(
                    dataset.queries, dataset.locations, touched
                )
                delta["cells_recomputed"] += stats["cells_recomputed"]
                delta["lists_rebuilt"] += stats["lists_rebuilt"]
            if self.core == "columnar":
                # Live F-Boxes just republished their segments; any other
                # segment for this dataset (e.g. published before a process
                # restart) no longer reflects its state — drop it so a cold
                # attach rebuilds instead of adopting stale values.
                space = self.segments
                if space is not None:
                    space.clear(dataset=name, keep_measures=list(live))
            with self._lock:
                self._generations[name] = self._generations.get(name, 0) + 1
                generation = self._generations[name]
        return {"generation": generation, "touched": touched, **delta}

    def adopt_observations(
        self, name: str, observations: list, generation: int
    ) -> None:
        """Adopt a migrated dataset's observation journal (shard resize).

        If the dataset is already materialized the journal is applied
        immediately (one bulk incremental apply, so live F-Boxes and any
        columnar segments refresh); otherwise it wholesale-replaces the
        pending stash that the next :meth:`dataset` call folds in after the
        deterministic base load.  Either way the generation counter is
        raised to the source's, so the imported trend ring's generation
        tags stay truthful and the next local ingest continues the same
        sequence a cold boot would have produced.
        """
        self.spec(name)
        with self._dataset_lock(name):
            if self.is_loaded(name):
                if observations:
                    self.apply_observations(name, list(observations))
            else:
                with self._lock:
                    if observations:
                        self._pending[name] = {
                            (obs.query, obs.location): obs
                            for obs in observations
                        }
                    else:
                        self._pending.pop(name, None)
            self.sync_generation(name, generation)

    def _take_pending(self, name: str) -> list:
        with self._lock:
            pending = self._pending.pop(name, None)
        return list(pending.values()) if pending else []

    def live_fboxes(self, name: str) -> dict[str, FBox]:
        """The live F-Boxes for ``name``, keyed by measure."""
        with self._lock:
            return {
                measure: fbox
                for (n, measure), fbox in self._fboxes.items()
                if n == name
            }

    def names(self) -> list[str]:
        """Registered dataset names, in registration order."""
        with self._lock:
            return list(self._specs)

    def spec(self, name: str) -> DatasetSpec:
        """The spec for ``name``; raises :class:`NotFound` when unregistered."""
        with self._lock:
            spec = self._specs.get(name)
        if spec is None:
            known = ", ".join(sorted(self.names())) or "none"
            raise NotFound(f"unknown dataset {name!r} (registered: {known})")
        return spec

    def breaker(self, name: str) -> CircuitBreaker:
        """The circuit breaker guarding ``name`` (created on first use)."""
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    name, self.breaker_config, clock=self._clock
                )
            return breaker

    def dataset(self, name: str):
        """The materialized dataset (loaded exactly once, double-checked).

        The load runs under the dataset's circuit breaker: a crashing
        loader counts toward opening the circuit, and an open circuit
        answers :class:`~repro.service.errors.CircuitOpen` *without*
        calling the loader at all.
        """
        spec = self.spec(name)
        loaded = self._datasets.get(name)
        if loaded is None:
            with self._dataset_lock(name):
                with self._lock:
                    loaded = self._datasets.get(name)
                if loaded is None:
                    breaker = self.breaker(name)
                    breaker.allow()
                    with self._lock:
                        self._building.add(name)
                    try:
                        if self.faults is not None:
                            self.faults.fail("dataset_load", name)
                        loaded = spec.loader()
                        pending = self._take_pending(name)
                        if pending:
                            loaded.upsert_observations(pending)
                    except BaseException:
                        breaker.record_failure()
                        raise
                    else:
                        breaker.record_success()
                    finally:
                        with self._lock:
                            self._building.discard(name)
                    with self._lock:
                        self._datasets[name] = loaded
        return loaded

    def is_loaded(self, name: str) -> bool:
        """True when the dataset has been materialized already."""
        with self._lock:
            return name in self._datasets

    def loaded_measures(self, name: str) -> list[str]:
        """Measures with a live FBox for ``name``."""
        with self._lock:
            return [measure for (n, measure) in self._fboxes if n == name]

    def fbox(self, name: str, measure: str | None = None) -> FBox:
        """The shared FBox for ``(name, measure)``, built exactly once.

        An invalid measure surfaces as :class:`Unprocessable` so the HTTP
        layer answers 422 instead of 500.
        """
        spec = self.spec(name)
        measure = (measure or spec.default_measure).lower()
        key = (name, measure)
        fbox = self._fboxes.get(key)
        if fbox is None:
            dataset = self.dataset(name)
            with self._dataset_lock(name):
                with self._lock:
                    fbox = self._fboxes.get(key)
                if fbox is None:
                    breaker = self.breaker(name)
                    breaker.allow()
                    with self._lock:
                        self._building.add(name)
                    box_class = ColumnarFBox if self.core == "columnar" else FBox
                    try:
                        if spec.site == "taskrabbit":
                            fbox = box_class.for_marketplace(
                                dataset, self.schema, measure=measure
                            )
                        else:
                            fbox = box_class.for_search(
                                dataset, self.schema, measure=measure
                            )
                        if self.core == "columnar":
                            space = self.segments
                            if space is not None:
                                fbox.bind_segment(space, name, measure)
                    except ServiceError:
                        breaker.record_bypass()
                        raise
                    except ReproError as error:
                        # A semantic problem with *this request* (e.g. an
                        # unknown measure), not evidence the dataset is
                        # sick — never feeds the breaker.
                        breaker.record_bypass()
                        raise Unprocessable(
                            f"cannot build an F-Box for dataset {name!r} with "
                            f"measure {measure!r}: {error}"
                        ) from error
                    except BaseException:
                        breaker.record_failure()
                        raise
                    else:
                        breaker.record_success()
                    finally:
                        with self._lock:
                            self._building.discard(name)
                    with self._lock:
                        self._fboxes[key] = fbox
        return fbox

    def preload(self) -> None:
        """Materialize every dataset and its default-measure FBox eagerly."""
        for name in self.names():
            self.fbox(name)

    def is_building(self, name: str) -> bool:
        """True while a thread is materializing ``name`` (load or build)."""
        with self._lock:
            return name in self._building

    def breaker_states(self) -> dict[str, dict]:
        """Breaker snapshot per registered dataset (closed when untouched)."""
        states = {}
        for name in self.names():
            states[name] = self.breaker(name).snapshot()
        return states

    def health_report(self) -> list[dict]:
        """Per-dataset readiness facts for ``/readyz``."""
        report = []
        for name in self.names():
            breaker = self.breaker(name)
            report.append(
                {
                    "name": name,
                    "loaded": self.is_loaded(name),
                    "building": self.is_building(name),
                    "breaker": breaker.state,
                    "retry_in": breaker.retry_in(),
                }
            )
        return report

    def quarantined(self) -> list[str]:
        """Datasets whose breaker is not closed (open or probing)."""
        return [
            name for name in self.names() if self.breaker(name).state != CLOSED
        ]

    def build_counts(self) -> dict[str, int]:
        """Cumulative cube and index-family builds across all live F-Boxes."""
        with self._lock:
            fboxes = list(self._fboxes.values())
        return {
            "cube_builds": sum(fbox.cube_builds for fbox in fboxes),
            "family_builds": sum(fbox.family_builds for fbox in fboxes),
            "fboxes": len(fboxes),
            "delta_applies": sum(fbox.delta_applies for fbox in fboxes),
            "delta_cells": sum(fbox.cells_recomputed for fbox in fboxes),
            "delta_lists": sum(fbox.lists_rebuilt for fbox in fboxes),
            "segment_attaches": sum(
                getattr(fbox, "segment_attaches", 0) for fbox in fboxes
            ),
        }

    def describe(self) -> list[dict]:
        """The ``/datasets`` listing: one entry per registered spec."""
        entries = []
        for name in self.names():
            spec = self.spec(name)
            entry = {
                "name": name,
                "site": spec.site,
                "default_measure": spec.default_measure,
                "description": spec.description,
                "loaded": self.is_loaded(name),
                "measures_ready": sorted(self.loaded_measures(name)),
            }
            if spec.scenario:
                entry["scenario"] = spec.scenario
                entry["overrides"] = {
                    key: json.loads(value) for key, value in spec.overrides
                }
            if self.is_loaded(name):
                dataset = self.dataset(name)
                entry["observations"] = len(dataset)
                entry["queries"] = len(dataset.queries)
                entry["locations"] = len(dataset.locations)
            entries.append(entry)
        return entries


def default_registry(
    seed: int | None = None,
    scope: str = "small",
    taskrabbit_path: str | None = None,
    google_path: str | None = None,
    breaker_config: BreakerConfig | None = None,
    faults: FaultInjector | None = None,
    core: str = "dict",
) -> DatasetRegistry:
    """The registry ``repro serve`` boots with: one TaskRabbit, one Google.

    ``scope="small"`` crawls six cities (fast boots, smoke tests);
    ``scope="full"`` runs the paper-scale category crawl and full study
    design.  A JSONL path replaces simulation for that dataset.
    """
    from ..experiments.datasets import (
        DEFAULT_SEED,
        build_google_dataset,
        build_taskrabbit_dataset,
    )

    if scope not in ("small", "full"):
        raise ReproError(f"scope must be 'small' or 'full', got {scope!r}")
    seed = DEFAULT_SEED if seed is None else seed
    cities = SMALL_CITIES if scope == "small" else None
    design = "paper" if scope == "small" else "full"

    if taskrabbit_path:
        taskrabbit_loader = lambda: load_marketplace_dataset(taskrabbit_path)
        taskrabbit_description = f"loaded from {taskrabbit_path}"
    else:
        taskrabbit_loader = lambda: build_taskrabbit_dataset(seed=seed, cities=cities)
        taskrabbit_description = f"simulated crawl (seed={seed}, scope={scope})"
    if google_path:
        google_loader = lambda: load_search_dataset(google_path)
        google_description = f"loaded from {google_path}"
    else:
        google_loader = lambda: build_google_dataset(seed=seed, design=design)
        google_description = f"simulated study (seed={seed}, design={design})"

    registry = DatasetRegistry(
        breaker_config=breaker_config, faults=faults, core=core
    )
    registry.register(
        DatasetSpec(
            name="taskrabbit",
            site="taskrabbit",
            loader=taskrabbit_loader,
            description=taskrabbit_description,
        )
    )
    registry.register(
        DatasetSpec(
            name="google",
            site="google",
            loader=google_loader,
            description=google_description,
        )
    )
    return registry
