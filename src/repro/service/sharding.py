"""Multi-process dataset sharding: the front-end half.

``repro serve --shards N`` partitions cube ownership across ``N`` worker
processes so TA sweeps and cube builds for *distinct* datasets use distinct
interpreters — real CPU parallelism instead of GIL time-slicing.  This
module holds everything the front-end process needs:

* :func:`shard_for` — deterministic consistent hashing of dataset names
  onto shards (an MD5 hash ring with virtual nodes, stable across runs and
  processes — Python's own ``hash`` is salted per process and useless here);
* the length-prefixed JSON frame protocol shared with
  :mod:`repro.service.shard_worker` (:func:`send_frame` / :func:`recv_frame`);
* :class:`ShardRouter` — the execution backend the application layer
  (:class:`repro.service.app.FBoxApp`) dispatches POST queries through when
  sharding is on: it owns the worker pool (spawned via ``multiprocessing``'s
  ``fork`` context so dataset specs and loaders are inherited without
  pickling), per-shard connection pools, health monitoring with
  restart-on-crash, and a per-shard :class:`~repro.service.resilience.
  CircuitBreaker` — a dead shard answers 503 ``shard_unavailable`` and
  reports its datasets as quarantined in ``/readyz`` until the respawned
  worker pongs.

Worker processes rebuild their registry/caches from plain spec tuples
passed at spawn time — never from the parent's live objects — so a fork
taken while a front-end thread holds a registry or cache lock can never
deadlock the child.

The pool is **live-resizable**: :meth:`ShardRouter.resize` (behind
``POST /v1/admin/shards``) computes the old→new ring diff — consistent
hashing bounds movement to roughly ``K/N`` of ``K`` datasets — spawns or
retires workers, migrates each moving dataset's full state (observation
journal, idempotency ledger and high-water sequence, trend ring) through
the ``export_dataset``/``import_dataset`` frame ops, and flips routing
atomically per dataset via an explicit placement table that overrides the
ring while the resize is in flight.  Requests against a mid-copy dataset
queue briefly (writes) or shed with 503 ``shard_resizing`` (reads), and a
worker crash mid-copy is retried against the monitor-restarted worker.

``/batch`` is planned **per shard**: items are partitioned by their
dataset's owner and each sub-batch runs through the owning worker's normal
batch planner, so shared-sweep grouping (one TA sweep per homogeneous
group) still happens inside the process that owns the cubes.  Group keys
include the dataset name, so groups never span shards and the merged
envelope is byte-identical to the single-process answer.
"""

from __future__ import annotations

import hashlib
import json
import logging
import multiprocessing
import random
import socket
import struct
import threading
import time
from bisect import bisect_right
from typing import Mapping

from .errors import (
    BadRequest,
    CircuitOpen,
    Conflict,
    NotFound,
    RequestTimeout,
    ServiceError,
    ShardResizing,
    ShardUnavailable,
    ShuttingDown,
    TooManyRequests,
    Unprocessable,
)
from .faults import FaultInjector
from .registry import DatasetRegistry
from .resilience import CLOSED, OPEN, BreakerConfig, CircuitBreaker

__all__ = [
    "ShardRouter",
    "shard_for",
    "build_ring",
    "send_frame",
    "recv_frame",
    "encode_error",
    "decode_error",
]

_logger = logging.getLogger("repro.service")

# ----------------------------------------------------------------------
# Frame protocol: 4-byte big-endian length, then that many bytes of JSON.
# ----------------------------------------------------------------------

_FRAME_HEADER = struct.Struct(">I")
_MAX_FRAME_BYTES = 64 << 20


def send_frame(sock: socket.socket, document) -> None:
    """Write one length-prefixed JSON frame."""
    data = json.dumps(document).encode("utf-8")
    if len(data) > _MAX_FRAME_BYTES:
        raise ValueError(f"frame exceeds {_MAX_FRAME_BYTES} bytes")
    sock.sendall(_FRAME_HEADER.pack(len(data)) + data)


def recv_frame(sock: socket.socket):
    """Read one frame; ``None`` on a clean EOF before the header."""
    header = _recv_exactly(sock, _FRAME_HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length > _MAX_FRAME_BYTES:
        raise ConnectionError(f"peer announced a {length}-byte frame")
    data = _recv_exactly(sock, length, eof_ok=False)
    return json.loads(data.decode("utf-8"))


def _recv_exactly(sock: socket.socket, count: int, eof_ok: bool):
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if eof_ok and not chunks:
                return None
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Consistent hashing of dataset names onto shards
# ----------------------------------------------------------------------

_VNODES = 64


def _point(text: str) -> int:
    return int.from_bytes(hashlib.md5(text.encode("utf-8")).digest()[:8], "big")


def build_ring(shards: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """The hash ring for ``shards`` workers: sorted points and their owners."""
    pairs = sorted(
        (_point(f"fbox-shard-{shard}:{vnode}"), shard)
        for shard in range(shards)
        for vnode in range(_VNODES)
    )
    return tuple(p for p, _ in pairs), tuple(s for _, s in pairs)


def shard_for(name: str, shards: int, ring=None) -> int:
    """The shard owning dataset ``name`` (deterministic across processes)."""
    if shards <= 1:
        return 0
    points, owners = ring if ring is not None else build_ring(shards)
    index = bisect_right(points, _point(name)) % len(points)
    return owners[index]


# ----------------------------------------------------------------------
# Error round-tripping (worker → front)
# ----------------------------------------------------------------------

_ERROR_CLASSES: dict[str, type[ServiceError]] = {
    "bad_request": BadRequest,
    "not_found": NotFound,
    "unprocessable": Unprocessable,
    "batch_conflict": Conflict,
    "timeout": RequestTimeout,
    "overloaded": TooManyRequests,
    "circuit_open": CircuitOpen,
    "shard_unavailable": ShardUnavailable,
    "shard_resizing": ShardResizing,
    "shutting_down": ShuttingDown,
}


def encode_error(error: ServiceError) -> dict:
    """A :class:`ServiceError` as a JSON-safe protocol payload."""
    return {
        "status": error.status,
        "kind": error.kind,
        "message": str(error),
        "retryable": error.retryable,
        "retry_after": error.retry_after,
        "extra": dict(error.extra) if error.extra else None,
    }


def decode_error(payload: Mapping) -> BaseException:
    """Rebuild the worker's exception so the front-end's error rendering,
    metrics, and degraded-answer control flow behave exactly as if the
    failure had happened in-process."""
    kind = str(payload.get("kind", "internal"))
    message = str(payload.get("message", "shard worker error"))
    retry_after = payload.get("retry_after")
    extra = payload.get("extra")
    cls = _ERROR_CLASSES.get(kind)
    if cls is None:
        # Includes "internal": the front's generic 500 path renders it with
        # the same body the in-process pipeline would have produced.
        return _RemoteFailure(message)
    if issubclass(cls, (TooManyRequests, CircuitOpen)):
        return cls(
            message,
            retry_after=retry_after if retry_after is not None else (
                1.0 if issubclass(cls, TooManyRequests) else None
            ),
            extra=extra,
        )
    error = cls(message)
    if retry_after is not None:
        error.retry_after = retry_after
    if extra:
        error.extra = extra
    return error


class _RemoteFailure(Exception):
    """A non-ServiceError crash inside a worker (e.g. an injected handler
    fault): surfaces through the front's generic 500 path, message intact."""


# ----------------------------------------------------------------------
# The shard pool
# ----------------------------------------------------------------------

_SHARD_BREAKER = BreakerConfig(failure_threshold=1, reset_timeout=0.25)
_MAX_IDLE_CONNECTIONS = 8
_STATUS_TIMEOUT = 5.0
_PING_TIMEOUT = 2.0

_MAX_SHARD_COUNT = 64
"""Upper bound on the live-resizable worker pool (one process per shard)."""

_RESTART_BACKOFF_BASE = 0.05
"""First-restart delay for a crashed worker, in seconds.  Negligible for
isolated crashes; doubles per consecutive crash so a crash-looping worker
cannot hot-spin the front's monitor thread."""

_RESTART_BACKOFF_CAP = 5.0
"""Ceiling on the exponential restart backoff."""

_RESTART_JITTER = 0.1
"""Fraction of the delay added as seeded jitter (decorrelates restarts)."""

_RESTART_STABLE_WINDOW = 5.0
"""A worker that survives this long resets the consecutive-crash counter."""

_RESIZE_WRITE_GRACE = 1.0
"""How long a write to a mid-migration dataset waits for the routing flip
before answering 503 ``shard_resizing`` (writes queue briefly)."""

_RESIZE_READ_GRACE = 0.05
"""Reads wait only briefly: a stale answer or retry beats a stalled one."""

_RESIZE_SETTLE = 0.02
"""Pause between gating a dataset and the first state copy, letting writes
that passed the gate before it existed land on the source."""

_MIGRATION_TIMEOUT = 30.0
"""Socket budget for one export/import exchange."""

_MIGRATION_DEADLINE = 30.0
"""Total budget for migrating one dataset, crash retries included."""


class _Shard:
    """One worker process slot: process handle, address, sockets, breaker."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: multiprocessing.process.BaseProcess | None = None
        self.address: tuple[str, int] | None = None
        self.breaker = CircuitBreaker(f"shard-{index}", _SHARD_BREAKER)
        self.lock = threading.Lock()
        self.idle: list[socket.socket] = []
        self.crashes = 0
        self.consecutive_crashes = 0
        self.next_restart_at = 0.0
        self.spawned_at = 0.0
        self.retired = False

    def clear_pool(self) -> None:
        with self.lock:
            sockets, self.idle = self.idle, []
        for sock in sockets:
            try:
                sock.close()
            except OSError:
                pass


class ShardRouter:
    """Routes POST query execution to the worker pool, one shard per dataset.

    Owns worker lifecycle: eager spawn at construction, a monitor thread
    that health-checks workers (liveness plus periodic pings) and respawns
    crashed ones, and a per-shard breaker so requests against a dead shard
    fail fast with 503 ``shard_unavailable`` instead of hanging, while
    ``/readyz`` reports the shard's datasets as quarantined.
    """

    def __init__(
        self,
        registry: DatasetRegistry,
        shards: int,
        request_timeout: float | None = 30.0,
        cache_size: int = 256,
        cache_ttl: float | None = None,
        faults: FaultInjector | None = None,
        poll_interval: float = 0.1,
        io_grace: float = 10.0,
        alert_threshold: float | None = None,
        core: str = "dict",
        namespace: str | None = None,
        restart_seed: int = 0,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.registry = registry
        self.shards = shards
        self.request_timeout = request_timeout
        self.cache_size = cache_size
        self.cache_ttl = cache_ttl
        self.faults = faults
        self.alert_threshold = alert_threshold
        self.core = core
        self.namespace = namespace
        self.poll_interval = poll_interval
        self.io_grace = io_grace
        self.metrics = None  # set by make_app; used for /batch accounting
        self._ring = build_ring(shards)
        self._mp = multiprocessing.get_context("fork")
        self._closed = False
        self._spawn_lock = threading.Lock()
        self._restart_rng = random.Random(restart_seed)
        # Live-resize state: one resize runs at a time; ``_placement``
        # overrides the ring per dataset while one is in flight, and
        # ``_moving`` gates requests against a dataset whose state is
        # mid-copy (the event fires at the routing flip).
        self._resize_lock = threading.Lock()
        self._placement: dict[str, int] | None = None
        self._moving: dict[str, threading.Event] = {}
        self._resize_status: dict = {
            "state": "idle",
            "from": None,
            "to": None,
            "dataset": None,
            "moving": 0,
            "migrated": 0,
            "resizes": 0,
            "last": None,
        }
        self._shards = [_Shard(index) for index in range(shards)]
        for shard in self._shards:
            self._spawn(shard)
        self._monitor = threading.Thread(
            target=self._monitor_loop, daemon=True, name="fbox-shard-monitor"
        )
        self._monitor.start()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def shard_of(self, name) -> int:
        """The shard index owning dataset ``name`` (0 for non-strings, so
        malformed requests still route somewhere and get their normal 4xx).

        While a resize is in flight the explicit placement table wins: it
        starts as the old ring's assignment for every dataset and flips to
        the new owner per dataset as each migration completes, so routing
        is atomic per dataset even though the pool changes underneath."""
        if not isinstance(name, str) or not name:
            return 0
        placement = self._placement
        if placement is not None:
            owner = placement.get(name)
            if owner is not None:
                return owner
        return shard_for(name, self.shards, self._ring)

    def _slot(self, name) -> _Shard:
        """The live :class:`_Shard` owning ``name``.

        Re-resolves if a concurrent resize flips placement and the slot
        list between the index computation and the lookup."""
        while True:
            shards = self._shards
            index = self.shard_of(name)
            if index < len(shards):
                return shards[index]

    def _slot_by_index(self, index: int) -> _Shard:
        shards = self._shards
        if index < len(shards):
            return shards[index]
        raise ShardUnavailable(
            f"shard {index} was retired by a pool resize; retry",
            retry_after=0.2,
            extra={"shard": index},
        )

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, shard: _Shard) -> None:
        """Fork one worker, handing it the pre-bound listener socket.

        The listener is created (and listening) *before* the fork, so the
        front can connect immediately — connections queue in the backlog
        until the child's accept loop runs.  The worker gets plain spec
        tuples and fault rules, never the parent's live registry: a child
        must not inherit locks another front-end thread might hold.
        """
        from .shard_worker import WorkerConfig, worker_main

        with self._spawn_lock:
            if self._closed:
                return
            listener = socket.create_server(("127.0.0.1", 0), backlog=64)
            specs = tuple(
                self.registry.spec(name) for name in self.registry.names()
            )
            fault_spec = None
            if self.faults is not None:
                fault_spec = (self.faults.rules, self.faults.seed)
            config = WorkerConfig(
                index=shard.index,
                request_timeout=self.request_timeout,
                cache_size=self.cache_size,
                cache_ttl=self.cache_ttl,
                schema=self.registry.schema,
                breaker_config=self.registry.breaker_config,
                exit_faults_consumed=shard.crashes,
                alert_threshold=self.alert_threshold,
                core=self.core,
                namespace=self.namespace,
            )
            process = self._mp.Process(
                target=worker_main,
                args=(listener, specs, fault_spec, config),
                daemon=True,
                name=f"fbox-shard-{shard.index}",
            )
            process.start()
            address = listener.getsockname()[:2]
            listener.close()  # the child inherited its own copy of the FD
            with shard.lock:
                shard.process = process
                shard.address = (address[0], address[1])
                shard.spawned_at = time.monotonic()

    def _monitor_loop(self) -> None:
        ticks = 0
        ping_every = max(1, int(2.0 / max(self.poll_interval, 0.01)))
        while not self._closed:
            time.sleep(self.poll_interval)
            ticks += 1
            for shard in list(self._shards):
                if self._closed:
                    return
                if shard.retired:
                    continue
                process = shard.process
                if process is None:
                    continue
                if not process.is_alive():
                    # Capped exponential backoff: a crash-looping worker is
                    # left dead (breaker open, requests shed fast) until its
                    # restart slot arrives instead of hot-spinning respawns.
                    if time.monotonic() < shard.next_restart_at:
                        continue
                    self._revive(shard, "worker process died")
                elif ticks % ping_every == 0 and not self._ping(shard):
                    # Alive but not answering: assume wedged and replace it.
                    try:
                        process.terminate()
                    except OSError:
                        pass
                    self._revive(shard, "worker stopped answering pings")

    def _revive(self, shard: _Shard, reason: str) -> None:
        """Quarantine a dead shard, respawn it, and close the breaker once
        the replacement answers a ping.

        Each revive schedules the *next* allowed restart: the delay doubles
        per consecutive crash (a worker that stays up for
        ``_RESTART_STABLE_WINDOW`` seconds resets the streak), is capped,
        and carries seeded jitter so a host-wide event doesn't restart
        every shard in lockstep."""
        now = time.monotonic()
        shard.crashes += 1
        if now - shard.spawned_at < _RESTART_STABLE_WINDOW:
            shard.consecutive_crashes += 1
        else:
            shard.consecutive_crashes = 1
        delay = min(
            _RESTART_BACKOFF_BASE * (2 ** (shard.consecutive_crashes - 1)),
            _RESTART_BACKOFF_CAP,
        )
        delay *= 1.0 + _RESTART_JITTER * self._restart_rng.random()
        shard.next_restart_at = now + delay
        if self.metrics is not None:
            self.metrics.record_shard_restart(shard.index)
        shard.breaker.record_failure()
        shard.clear_pool()
        _logger.warning(
            "shard %d: %s; restarting (crash #%d, next backoff %.3fs)",
            shard.index,
            reason,
            shard.crashes,
            delay,
        )
        process = shard.process
        if process is not None:
            try:
                process.join(timeout=0.2)
            except (OSError, AssertionError):
                pass
        try:
            self._spawn(shard)
        except OSError as error:  # pragma: no cover - fork/bind failure
            _logger.error("shard %d respawn failed: %s", shard.index, error)
            return
        deadline = time.monotonic() + 10.0
        while not self._closed and time.monotonic() < deadline:
            if self._ping(shard):
                shard.breaker.record_success()
                _logger.warning("shard %d: worker restarted", shard.index)
                return
            if shard.process is not None and not shard.process.is_alive():
                # Crashed again during boot; the next monitor pass retries.
                return
            time.sleep(0.02)

    def _ping(self, shard: _Shard) -> bool:
        try:
            reply = self._roundtrip(shard, {"op": "ping"}, _PING_TIMEOUT)
        except (OSError, ConnectionError, ValueError):
            return False
        return bool(reply.get("ok"))

    # ------------------------------------------------------------------
    # Live resize (POST /v1/admin/shards)
    # ------------------------------------------------------------------

    def resize_status(self) -> dict:
        """The resize state machine's current frame (feeds ``/readyz`` and
        ``/v1/datasets``): state, endpoints, per-dataset progress, and the
        last completed resize's summary."""
        status = dict(self._resize_status)
        status["moving_datasets"] = sorted(self._moving)
        return status

    def _note_resize(self, state: str, **fields) -> None:
        self._resize_status = {**self._resize_status, "state": state, **fields}

    def resize(self, count: int) -> dict:
        """Grow or shrink the worker pool to ``count`` shards, live.

        One resize runs at a time; a concurrent request answers 503
        ``shard_resizing`` (retryable) rather than queueing, because the
        right count is whatever the operator asks for *after* seeing the
        first resize land.
        """
        if isinstance(count, bool) or not isinstance(count, int):
            raise Unprocessable("shard count must be an integer")
        if not 1 <= count <= _MAX_SHARD_COUNT:
            raise Unprocessable(
                f"shard count must be between 1 and {_MAX_SHARD_COUNT}, "
                f"got {count}"
            )
        if self._closed:
            raise ShuttingDown("the service is draining; shard pool is frozen")
        if not self._resize_lock.acquire(blocking=False):
            raise ShardResizing(
                "a shard-pool resize is already in progress; retry after it "
                "completes",
                retry_after=1.0,
            )
        try:
            return self._resize(count)
        finally:
            self._resize_lock.release()

    def _resize(self, count: int) -> dict:
        started = time.monotonic()
        old = self.shards
        old_ring = self._ring
        new_ring = build_ring(count)
        names = self.registry.names()
        # Start from the surviving placement of an interrupted resize (if
        # any) so a retry completes the job instead of undoing its flips.
        previous = self._placement
        placement = {
            name: (
                previous[name]
                if previous is not None and name in previous
                else shard_for(name, old, old_ring)
            )
            for name in names
        }
        movers = [
            name
            for name in names
            if shard_for(name, count, new_ring) != placement[name]
        ]
        if count == old and not movers:
            return {
                "kind": "resize",
                "from": old,
                "to": count,
                "migrated": [],
                "noop": True,
                "duration_seconds": 0.0,
                "core": self.core,
            }
        _logger.warning(
            "resizing shard pool %d -> %d (%d of %d datasets move)",
            old,
            count,
            len(movers),
            len(names),
        )
        self._note_resize(
            "planned",
            **{"from": old, "to": count, "moving": len(movers),
               "migrated": 0, "dataset": None},
        )
        self._placement = placement
        migrated: list[str] = []
        try:
            if count > len(self._shards):
                # Grow: bring the new workers up (and pinging) before any
                # state moves, so a migration never races a worker boot.
                fresh = [
                    _Shard(index)
                    for index in range(len(self._shards), count)
                ]
                for shard in fresh:
                    self._spawn(shard)
                self._shards = self._shards + fresh
                for shard in fresh:
                    self._await_worker(shard)
            for name in movers:
                dest_index = shard_for(name, count, new_ring)
                self._note_resize("draining", dataset=name)
                source = self._slot_by_index(placement[name])
                dest = self._slot_by_index(dest_index)
                gate = threading.Event()
                self._moving[name] = gate
                try:
                    self._note_resize("migrating", dataset=name)
                    self._migrate(name, source, dest)
                    # The flip: placement first, then the gate — a queued
                    # write that wakes on the gate re-resolves its route
                    # and lands on the new owner.
                    placement[name] = dest_index
                    self._note_resize(
                        "flipped", dataset=name, migrated=len(migrated) + 1
                    )
                finally:
                    gate.set()
                    self._moving.pop(name, None)
                migrated.append(name)
                if self.metrics is not None:
                    self.metrics.record_dataset_migrated()
        except BaseException:
            # Leave the placement table in force: every dataset still routes
            # to a worker that holds its state (flipped ones to their new
            # owner), and a retried resize picks up from here.
            self._note_resize("failed", dataset=None)
            raise
        self.shards = count
        self._ring = new_ring
        self._placement = None
        shards = self._shards
        if count < len(shards):
            retired = shards[count:]
            # Truncate before shutting the retirees down so the monitor's
            # next pass cannot resurrect them.
            self._shards = shards[:count]
            for shard in retired:
                shard.retired = True
            self._note_resize("retired", dataset=None)
            for shard in retired:
                self._retire(shard)
        duration = time.monotonic() - started
        if self.metrics is not None:
            self.metrics.record_resize(duration)
        summary = {
            "kind": "resize",
            "from": old,
            "to": count,
            "migrated": migrated,
            "noop": False,
            "duration_seconds": round(duration, 6),
            "core": self.core,
        }
        space = self.registry.segments
        if space is not None:
            # Columnar handoff is O(1): the destination re-attaches the same
            # shared-memory segments, so the per-dataset segment census is
            # the observable proof that no state was copied or re-published.
            summary["segments"] = {
                name: space.segment_count(name) for name in migrated
            }
        self._note_resize(
            "idle",
            dataset=None,
            resizes=self._resize_status["resizes"] + 1,
            last=summary,
        )
        _logger.warning(
            "shard pool resized %d -> %d in %.3fs (%d datasets moved)",
            old,
            count,
            duration,
            len(migrated),
        )
        return summary

    def _await_worker(self, shard: _Shard) -> None:
        deadline = time.monotonic() + 10.0
        while not self._closed and time.monotonic() < deadline:
            if self._ping(shard):
                return
            time.sleep(0.02)
        raise ShardUnavailable(
            f"shard {shard.index} did not come up in time for the resize",
            retry_after=1.0,
            extra={"shard": shard.index},
        )

    def _migrate(self, name: str, source: _Shard, dest: _Shard) -> None:
        """Copy one dataset's state from ``source`` to ``dest``.

        Copies until the source's generation is stable across the copy (new
        writes are gated on the moving event, so in-flight stragglers are
        the only source of movement and the loop converges).  A worker
        crash mid-copy — the chaos arcs script exactly this for both ends —
        surfaces as :class:`ShardUnavailable`; the monitor restarts the
        worker and the copy starts over from the survivor's truth.
        """
        time.sleep(_RESIZE_SETTLE)
        deadline = time.monotonic() + _MIGRATION_DEADLINE
        while True:
            try:
                exported = self._unwrap(
                    self._call_shard(
                        source,
                        {"op": "export_dataset", "dataset": name},
                        _MIGRATION_TIMEOUT,
                    )
                )
                self._unwrap(
                    self._call_shard(
                        dest,
                        {
                            "op": "import_dataset",
                            "dataset": name,
                            "generation": exported.get("generation"),
                            "state": exported.get("state"),
                        },
                        _MIGRATION_TIMEOUT,
                    )
                )
                check = self._unwrap(
                    self._call_shard(
                        source,
                        {"op": "export_dataset", "dataset": name},
                        _MIGRATION_TIMEOUT,
                    )
                )
                if check.get("generation") == exported.get("generation"):
                    self.registry.sync_generation(
                        name, int(exported.get("generation") or 0)
                    )
                    return
                # A straggler write landed between the copy and the check;
                # go around again with the fresher snapshot.
            except (CircuitOpen, OSError, ConnectionError, ValueError) as error:
                if time.monotonic() >= deadline:
                    raise
                _logger.warning(
                    "migration of %r interrupted (%s); waiting for the "
                    "worker to come back",
                    name,
                    error,
                )
                time.sleep(0.05)

    def _resize_gate(self, dataset: str, path: str) -> None:
        """Hold or shed one request against a mid-migration dataset.

        Writes wait up to ``_RESIZE_WRITE_GRACE`` for the flip (so most
        queue briefly and then land on the new owner); reads give up almost
        immediately — the caller either serves a stale degraded answer
        (``allow_stale``) or the client retries after ``Retry-After``.
        """
        gate = self._moving.get(dataset)
        if gate is None or gate.is_set():
            return
        grace = (
            _RESIZE_WRITE_GRACE if path == "/observations" else _RESIZE_READ_GRACE
        )
        if gate.wait(grace):
            return
        raise ShardResizing(
            f"dataset {dataset!r} is migrating to a new shard during a live "
            "pool resize; retry shortly",
            retry_after=0.2,
            extra={"dataset": dataset},
        )

    def _retire(self, shard: _Shard) -> None:
        """Shut one worker down for good (the monitor skips retired slots)."""
        try:
            self._roundtrip(shard, {"op": "shutdown"}, 0.5)
        except (OSError, ConnectionError, ValueError):
            pass
        shard.clear_pool()
        process = shard.process
        shard.process = None
        shard.address = None
        if process is None:
            return
        process.join(timeout=0.5)
        if process.is_alive():
            process.terminate()
            process.join(timeout=0.5)
        if process.is_alive():  # pragma: no cover - stubborn child
            process.kill()
            process.join(timeout=0.5)

    def close(self) -> None:
        """Stop the monitor and terminate every worker (idempotent)."""
        self._closed = True
        if self._monitor.is_alive():
            self._monitor.join(timeout=1.0)
        for shard in self._shards:
            try:
                self._roundtrip(shard, {"op": "shutdown"}, 0.5)
            except (OSError, ConnectionError, ValueError):
                pass
            shard.clear_pool()
            process = shard.process
            if process is None:
                continue
            process.join(timeout=0.5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=0.5)
            if process.is_alive():  # pragma: no cover - stubborn child
                process.kill()
                process.join(timeout=0.5)
        # The workers are gone; sweep the namespace's shared-memory segments
        # (worker registries never unlink — the front owns segment cleanup).
        self.registry.close()

    # ------------------------------------------------------------------
    # Connection pool + request dispatch
    # ------------------------------------------------------------------

    def _acquire(self, shard: _Shard) -> socket.socket:
        with shard.lock:
            if shard.idle:
                return shard.idle.pop()
            address = shard.address
        if address is None:
            raise ConnectionError(f"shard {shard.index} has no live worker")
        sock = socket.create_connection(address, timeout=self.io_grace)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _release(self, shard: _Shard, sock: socket.socket) -> None:
        with shard.lock:
            if not self._closed and len(shard.idle) < _MAX_IDLE_CONNECTIONS:
                shard.idle.append(sock)
                return
        try:
            sock.close()
        except OSError:
            pass

    def _roundtrip(self, shard: _Shard, message: dict, timeout: float | None):
        budget = (timeout if timeout and timeout > 0 else 30.0) + self.io_grace
        sock = self._acquire(shard)
        try:
            sock.settimeout(budget)
            send_frame(sock, message)
            reply = recv_frame(sock)
            if reply is None:
                raise ConnectionError("shard closed the connection mid-request")
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        self._release(shard, sock)
        return reply

    def _call_shard(self, shard: _Shard, message: dict, timeout: float | None):
        """One breaker-guarded exchange with a worker.

        A connection-level failure counts against the shard breaker (one
        strike opens it) and surfaces as 503 ``shard_unavailable``; the
        monitor thread restarts the worker and closes the breaker again
        once the replacement answers pings.
        """
        try:
            shard.breaker.allow()
        except CircuitOpen as error:
            raise ShardUnavailable(
                f"shard {shard.index} is down; its datasets are quarantined "
                "until the worker restarts",
                retry_after=error.retry_after,
                extra={**(error.extra or {}), "shard": shard.index},
            ) from None
        try:
            reply = self._roundtrip(shard, message, timeout)
        except (OSError, ConnectionError, ValueError) as error:
            shard.breaker.record_failure()
            raise ShardUnavailable(
                f"shard {shard.index} failed mid-request ({error}); "
                "retry once the worker restarts",
                retry_after=_SHARD_BREAKER.reset_timeout,
                extra={"shard": shard.index},
            ) from None
        shard.breaker.record_success()
        return reply

    @staticmethod
    def _unwrap(reply: Mapping):
        if reply.get("ok"):
            return reply.get("document")
        raise decode_error(reply.get("error") or {})

    def register_dataset(self, spec) -> None:
        """Broadcast a runtime-registered scenario dataset to every worker.

        Workers register **all** specs (routing mistakes then surface as
        wrong-shard answers, not key errors), so the broadcast mirrors the
        front registry onto each live worker; the spec travels as plain
        JSON — scenario name plus canonical overrides — and each worker
        rebuilds the identical :class:`DatasetSpec` locally.  A shard that
        is down is skipped on purpose: its respawn re-reads the front
        registry's spec list and inherits the dataset anyway.
        """
        message = {
            "op": "register_dataset",
            "dataset": spec.name,
            "scenario": spec.scenario,
            "overrides": dict(spec.overrides),
            "description": spec.description,
        }
        for shard in list(self._shards):
            try:
                self._unwrap(self._call_shard(shard, message, self.request_timeout))
            except ShardUnavailable:
                continue

    # ------------------------------------------------------------------
    # The execution backend surface (called by FBoxApp)
    # ------------------------------------------------------------------

    def execute(self, path: str, payload, timeout: float | None = None):
        """Answer one POST query via the owning worker (the sharded
        equivalent of running the handler in-process).  Deadlines are
        enforced *inside* the worker; the socket budget is only a safety
        net for a wedged worker."""
        if timeout is None:
            timeout = self.request_timeout
        if path == "/batch":
            return self._execute_batch(payload, timeout)
        dataset = payload.get("dataset") if isinstance(payload, Mapping) else None
        if isinstance(dataset, str):
            self._resize_gate(dataset, path)
        shard = self._slot(dataset)
        reply = self._call_shard(
            shard,
            {"op": "call", "path": path, "payload": payload, "timeout": timeout},
            timeout,
        )
        return self._unwrap(reply)

    def _execute_batch(self, payload, timeout: float | None) -> dict:
        """Partition a batch by owning shard and merge the sub-envelopes.

        Sub-batches run concurrently (one thread per involved shard) through
        each worker's normal batch planner, so shared-sweep grouping happens
        next to the cubes.  Item alignment is preserved; per-shard failures
        degrade to per-item errors (matching the planner's own isolation),
        except a worker-side deadline which fails the whole batch exactly
        like the in-process pipeline's single deadline would.
        """
        from .encoding import batch_item_error, encode_batch
        from .handlers import _batch_items

        items = _batch_items(payload)  # envelope-level 400s happen up front
        for name in {
            item.get("dataset") for item in items if isinstance(item, Mapping)
        }:
            if isinstance(name, str):
                self._resize_gate(name, "/batch")
        groups: dict[int, list[int]] = {}
        for position, item in enumerate(items):
            name = item.get("dataset") if isinstance(item, Mapping) else None
            groups.setdefault(self.shard_of(name), []).append(position)

        outcomes: dict[int, object] = {}

        def run_group(shard_index: int, positions: list[int]) -> None:
            sub = [items[position] for position in positions]
            try:
                reply = self._call_shard(
                    self._slot_by_index(shard_index),
                    {
                        "op": "call",
                        "path": "/batch",
                        "payload": {"requests": sub},
                        "timeout": timeout,
                    },
                    timeout,
                )
                outcomes[shard_index] = self._unwrap(reply)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                outcomes[shard_index] = error

        if len(groups) == 1:
            ((shard_index, positions),) = groups.items()
            run_group(shard_index, positions)
        else:
            threads = [
                threading.Thread(target=run_group, args=(index, positions))
                for index, positions in groups.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        results: list[dict | None] = [None] * len(items)
        sweep_groups = 0
        shared_items = 0
        for shard_index, positions in groups.items():
            outcome = outcomes.get(shard_index)
            if isinstance(outcome, RequestTimeout):
                raise outcome
            if isinstance(outcome, ServiceError):
                for position in positions:
                    results[position] = batch_item_error(outcome)
                continue
            if isinstance(outcome, BaseException):
                raise outcome
            envelope = outcome or {}
            sweep_groups += int(envelope.get("sweep_groups", 0))
            shared_items += int(envelope.get("shared_items", 0))
            for position, result in zip(positions, envelope.get("results", ())):
                results[position] = result
        for position, result in enumerate(results):
            if result is None:  # pragma: no cover - defensive
                results[position] = {
                    "status": 500,
                    "error": {
                        "code": "internal",
                        "kind": "internal",
                        "message": "shard returned no result for this item",
                        "retryable": False,
                    },
                }
        if self.metrics is not None:
            # One logical batch, whatever the fan-out: account it on the
            # front so fbox_batches_total matches the unsharded pipeline.
            self.metrics.record_batch(
                items=len(items), groups=sweep_groups, shared_items=shared_items
            )
        return encode_batch(
            results, sweep_groups=sweep_groups, shared_items=shared_items
        )

    # ------------------------------------------------------------------
    # Introspection: /datasets, /readyz, /metrics
    # ------------------------------------------------------------------

    def _worker_status(self, shard: _Shard) -> dict | None:
        """One worker's status document, or ``None`` when unreachable."""
        process = shard.process
        if process is None or not process.is_alive():
            return None
        if shard.breaker.state != CLOSED:
            return None
        try:
            reply = self._roundtrip(shard, {"op": "status"}, _STATUS_TIMEOUT)
        except (OSError, ConnectionError, ValueError):
            return None
        if not reply.get("ok"):
            return None
        return reply

    def _statuses(self) -> dict[int, dict | None]:
        return {
            shard.index: self._worker_status(shard)
            for shard in list(self._shards)
        }

    def _down_entry(self, shard: _Shard, name: str) -> dict:
        state = shard.breaker.state
        return {
            "name": name,
            "loaded": False,
            "building": False,
            "breaker": state if state != CLOSED else OPEN,
            "retry_in": shard.breaker.retry_in(),
        }

    def health_report(self) -> list[dict]:
        """Per-dataset readiness facts, shard-aware (feeds ``/readyz``).

        Datasets owned by an unreachable shard report an open breaker —
        quarantined — exactly like a dataset whose own breaker tripped.
        """
        statuses = self._statuses()
        report = []
        for name in self.registry.names():
            shard = self._slot(name)
            index = shard.index
            status = statuses.get(index)
            if status is None:
                entry = self._down_entry(shard, name)
            else:
                health = {e["name"]: e for e in status.get("health", ())}
                entry = dict(health.get(name) or self._down_entry(shard, name))
            entry["shard"] = index
            entry["migrating"] = name in self._moving
            report.append(entry)
        return report

    def describe(self) -> list[dict]:
        """The ``/datasets`` listing with live worker state overlaid."""
        statuses = self._statuses()
        entries = []
        for entry in self.registry.describe():
            name = entry["name"]
            shard = self._slot(name)
            index = shard.index
            status = statuses.get(index)
            if status is not None:
                remote = {e["name"]: e for e in status.get("datasets", ())}
                if name in remote:
                    entry = dict(remote[name])
                breakers = status.get("breakers") or {}
                state = (breakers.get(name) or {}).get("state", CLOSED)
            else:
                entry = dict(entry)
                entry["loaded"] = False
                state = shard.breaker.state
                state = state if state != CLOSED else OPEN
            entry["shard"] = index
            entry["generation"] = self.registry.generation(name)
            entry["breaker"] = state
            entry["migrating"] = name in self._moving
            entries.append(entry)
        return entries

    def merged_observability(self) -> dict:
        """Worker-side stats merged for the front's ``/metrics`` exposition.

        Covers the families whose truth lives in the workers when sharding
        is on: cache events, cube/index-family builds, index accesses,
        abandoned/degraded counters, per-dataset breaker states, and fired
        fault rules.  Request counters/histograms stay front-side (the
        front tracks every request it answers, sharded or not).
        """
        statuses = self._statuses()
        cache_extra: list[dict] = []
        build_extra: list[dict] = []
        counter_extra: list[dict] = []
        fault_extra: list[dict] = []
        breaker_states: dict[str, dict] = {}
        for name in self.registry.names():
            shard = self._slot(name)
            status = statuses.get(shard.index)
            if status is None:
                snapshot = shard.breaker.snapshot()
                snapshot["dataset"] = name
                if snapshot["state"] == CLOSED:
                    snapshot["state"] = OPEN
                breaker_states[name] = snapshot
            else:
                remote = (status.get("breakers") or {}).get(name)
                if remote is not None:
                    breaker_states[name] = remote
        for status in statuses.values():
            if status is None:
                continue
            if status.get("cache"):
                cache_extra.append(status["cache"])
            if status.get("builds"):
                build_extra.append(status["builds"])
            if status.get("counters"):
                counter_extra.append(status["counters"])
            if status.get("faults"):
                fault_extra.extend(status["faults"])
        return {
            "cache": cache_extra,
            "builds": build_extra,
            "counters": counter_extra,
            "faults": fault_extra,
            "breakers": breaker_states,
        }
