"""The application layer: a transport-agnostic ``Request -> Response`` surface.

:class:`FBoxApp` owns everything about answering a fairness query that is
*not* socket handling: the routing table, body-framing policy, request
validation, admission control, the per-request deadline, the result cache
and last-known-good store, degraded answers, and metrics.  Transports
(:mod:`repro.service.transports`) are thin adapters that parse HTTP off a
socket, build a :class:`Request`, and write the returned :class:`Response`
back — nothing in this module imports :mod:`http.server` or asyncio's
streams, which is what lets one application instance sit behind both the
threaded and the asyncio front-ends with byte-identical behavior.

The app also owns the **execution layer**: a bounded
:class:`~concurrent.futures.ThreadPoolExecutor` sized by
``executor_workers``.  The asyncio transport runs every CPU-bound F-Box
call (dataset loads, cube/index builds, TA sweeps) on this pool via
:meth:`FBoxApp.handle_async`, so the event loop never blocks and thread
count is a capacity knob.  The threaded transport keeps the legacy
guard-thread model (:func:`run_with_deadline`) it always had — one worker
thread per admitted request — which is exactly the unbounded behavior the
asyncio front replaces.

Two flows through the POST pipeline:

* **fast path** — when no fault injector is attached, a request whose
  answer is already cached is parsed, peeked, and answered inline without
  touching admission control or the executor.  This is what keeps cheap
  repeated queries out of the queue behind expensive builds.
* **slow path** — parse, admission (sync or async acquire, same counters),
  deadline-bounded execution, and on timeout/open-breaker an opt-in
  degraded answer from the last-known-good store.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import logging
import threading
from dataclasses import dataclass, field
from time import perf_counter
from urllib.parse import parse_qsl

from ..core.colstore import SegmentMiss
from .cache import LRUCache
from .errors import (
    BadRequest,
    CircuitOpen,
    DatasetExists,
    Forbidden,
    Gone,
    NotFound,
    RequestTimeout,
    ServiceError,
    ShuttingDown,
    Unprocessable,
)
from .faults import FaultInjector, faults_from_env
from .handlers import (
    API_PREFIX,
    LEGACY_SUNSET,
    REQUEST_PARSERS,
    ServiceContext,
    handle_batch,
    handle_compare,
    handle_datasets,
    handle_explain,
    handle_front_read,
    handle_healthz,
    handle_quantify,
    handle_readyz,
    handle_scenarios,
    handle_schema,
    handle_whatif,
    resolve_degraded,
)
from .ingest import IngestManager, handle_observations, handle_trends, trends_document
from .observability import ServiceMetrics, render_metrics
from .registry import CORES, DatasetRegistry, default_registry
from .resilience import AdmissionController

__all__ = [
    "BodyPlan",
    "FBoxApp",
    "Request",
    "Response",
    "format_retry_after",
    "make_app",
    "run_with_deadline",
]

_logger = logging.getLogger("repro.service")

def _admin_shards_unrouted(context, payload):
    # Registered so the transports read the request body and routing
    # resolves; the real work happens in FBoxApp's dispatch, which
    # intercepts the path before the handler table is consulted.
    raise Unprocessable(
        "live shard-pool resize requires --shards; this instance executes "
        "queries in-process"
    )


def _register_dataset_unrouted(context, payload):
    # Same placeholder pattern as /admin/shards: POST /datasets is always
    # intercepted by FBoxApp's dispatch ahead of admission control.
    raise Unprocessable("runtime dataset registration is handled by the front")


POST_ROUTES = {
    "/quantify": handle_quantify,
    "/compare": handle_compare,
    "/explain": handle_explain,
    "/whatif": handle_whatif,
    "/batch": handle_batch,
    # The live write path.  "/trends" is registered here too so the shard
    # workers' frame dispatch (which speaks POST) can answer routed trend
    # lookups; clients use the GET route.
    "/observations": handle_observations,
    "/trends": trends_document,
    # Operations surface: grow/shrink the worker pool while serving.
    "/admin/shards": _admin_shards_unrouted,
    # Scenario-first registration: a dataset spec born from a named
    # scenario, admin-gated and dispatched ahead of admission control.
    "/datasets": _register_dataset_unrouted,
}
GET_ROUTES = {
    "/datasets": handle_datasets,
    "/scenarios": handle_scenarios,
    "/healthz": handle_healthz,
    "/readyz": handle_readyz,
    "/schema": handle_schema,
    "/trends": handle_trends,
}

LEGACY_MODES = ("serve", "gone")
"""``--legacy-routes`` values: keep answering unversioned paths with
deprecation headers, or retire them with 410 + a ``v1_path`` pointer."""

_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


# ----------------------------------------------------------------------
# The transport-facing value types
# ----------------------------------------------------------------------


@dataclass
class Request:
    """One parsed HTTP request, as the transport hands it to the app.

    ``framing_error`` carries a body-framing rejection (bad Content-Length,
    oversized body) decided by :meth:`FBoxApp.plan_body`; the app raises it
    *inside* the tracked section so framing 400s hit the same metrics as
    any other endpoint error.  ``close`` records that the transport already
    marked the connection for close (unparseable or undrainable framing).
    """

    method: str
    path: str
    body: bytes = b""
    framing_error: ServiceError | None = None
    close: bool = False
    headers: dict = field(default_factory=dict)
    """Request headers, lower-cased keys (admin endpoints read the token)."""


@dataclass
class Response:
    """What the transport must write back: status, body, framing hints.

    ``headers`` carries extra response headers the app decided on (today:
    the ``Deprecation``/``Sunset`` pair on legacy unversioned paths); the
    transport writes them mechanically after its own framing headers.
    """

    status: int
    body: bytes
    content_type: str = "application/json"
    retry_after: float | None = None
    close: bool = False
    headers: dict = field(default_factory=dict)


@dataclass(frozen=True)
class BodyPlan:
    """The app's body-framing decision for one POST request.

    The transport executes it mechanically: read ``read`` bytes as the
    body, or — on a rejection — discard ``drain`` bytes (marking the
    connection for close if the drain fails), set ``close`` when the
    framing is beyond repair, and deliver ``error`` via
    ``Request.framing_error``.  Keeping the decision here means both
    transports resync keep-alive connections identically.
    """

    read: int = 0
    drain: int = 0
    close: bool = False
    error: ServiceError | None = None


def format_retry_after(retry_after: float) -> str:
    """``Retry-After`` wants integral seconds; round up so clients never retry early."""
    return str(max(1, int(-(-retry_after // 1))))


def _json_bytes(document: dict) -> bytes:
    return json.dumps(document, sort_keys=True).encode("utf-8")


def _error_body(error: ServiceError) -> bytes:
    """The unified error envelope: machine ``code``, human ``message``, the
    retry contract (``retryable`` / ``retry_after``), and any structured
    context.  ``kind`` is kept as a deprecated alias of ``code`` so pre-/v1
    clients keep decoding."""
    payload: dict = {
        "code": error.code,
        "kind": error.kind,
        "message": str(error),
        "retryable": error.retryable,
    }
    if error.extra:
        payload.update(error.extra)
    if error.retry_after is not None:
        payload["retry_after"] = error.retry_after
    return _json_bytes({"error": payload})


def _internal_error_body(error: BaseException) -> bytes:
    return _json_bytes(
        {
            "error": {
                "code": "internal",
                "kind": "internal",
                "message": str(error),
                "retryable": False,
            }
        }
    )


# ----------------------------------------------------------------------
# Deadline execution (legacy guard-thread model, used by the threaded
# transport; the asyncio transport uses the app's bounded executor)
# ----------------------------------------------------------------------


def run_with_deadline(fn, timeout: float | None, metrics: ServiceMetrics | None = None):
    """Run ``fn`` on a guard thread, raising 503 after ``timeout`` seconds.

    When the deadline fires, the worker thread is *abandoned*, not killed:
    it keeps running (a successful late result still warms caches), the
    ``abandoned_requests`` counter is bumped, and — the part that used to be
    silently discarded — any exception the abandoned worker eventually
    raises is logged under ``repro.service``.  The abandoned flag is flipped
    under a lock shared with the worker's error path so a failure racing the
    deadline is reported on exactly one side, never dropped.
    """
    if not timeout or timeout <= 0:
        return fn()
    outcome: dict = {}
    done = threading.Event()
    lock = threading.Lock()
    state = {"abandoned": False}

    def worker() -> None:
        try:
            value = fn()
            with lock:
                outcome["value"] = value
        except BaseException as error:  # propagated to the request thread
            with lock:
                outcome["error"] = error
                if state["abandoned"]:
                    _log_abandoned_failure(error)
        finally:
            done.set()

    threading.Thread(target=worker, daemon=True).start()
    if done.wait(timeout):
        if "error" in outcome:
            raise outcome["error"]
        return outcome["value"]
    with lock:
        state["abandoned"] = True
        late_error = outcome.get("error")
    if metrics is not None:
        metrics.record_abandoned()
    if late_error is not None:
        # The worker failed in the instant between the wait expiring and the
        # abandon flag being set; report it here instead.
        _log_abandoned_failure(late_error)
    raise _deadline_error(timeout)


def _deadline_error(timeout: float) -> RequestTimeout:
    return RequestTimeout(
        f"request exceeded the {timeout:g}s deadline; retry once the "
        "F-Box is warm"
    )


def _log_abandoned_failure(error: BaseException) -> None:
    _logger.error(
        "abandoned request worker failed after its deadline: %s",
        error,
        exc_info=error,
    )


# ----------------------------------------------------------------------
# The application
# ----------------------------------------------------------------------


class FBoxApp:
    """The transport-agnostic F-Box service: routing, policy, execution.

    One instance is shared by every connection of whichever transport
    fronts it; all state (context, executor, drain flag) is internally
    synchronized.  ``max_body_bytes`` / ``max_drain_bytes`` are instance
    attributes so tests can tighten framing limits per-app instead of
    monkeypatching module globals.
    """

    def __init__(
        self,
        context: ServiceContext,
        request_timeout: float | None = 30.0,
        executor_workers: int | None = None,
        admin_token: str | None = None,
        legacy_routes: str = "gone",
    ) -> None:
        if legacy_routes not in LEGACY_MODES:
            raise ValueError(
                f"legacy_routes must be one of {LEGACY_MODES}, got {legacy_routes!r}"
            )
        self.context = context
        self.request_timeout = request_timeout
        self.executor_workers = executor_workers
        self.admin_token = admin_token
        self.legacy_routes = legacy_routes
        self._register_lock = threading.Lock()
        self.max_body_bytes = 1 << 20  # 1 MiB is plenty for query parameters
        self.max_drain_bytes = 8 << 20  # past this, closing beats draining
        self.post_routes = dict(POST_ROUTES)
        self.get_routes = dict(GET_ROUTES)
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_shutdown(self) -> None:
        """Stop admitting new requests; in-flight and queued ones complete.

        New arrivals — on either transport — get a 503 ``shutting_down``
        with ``Connection: close``; the transport's ``drain()`` then waits
        for the in-flight gauge to reach zero before stopping the listener.
        """
        self._draining = True

    def close(self) -> None:
        """Release the execution pool and any shard pool (idempotent)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)
        router = self.context.router
        if router is not None:
            router.close()
        # Sweep any shared-memory segments this process owns (columnar core;
        # a no-op for the dict core).  After the router is closed no worker
        # is left publishing, so nothing can leak into /dev/shm.
        self.context.registry.close()

    def _ensure_executor(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                workers = self.executor_workers
                if workers is None or workers <= 0:
                    admission = self.context.admission
                    workers = (
                        admission.max_concurrency
                        if admission is not None and admission.enabled
                        else 8
                    )
                self._executor = concurrent.futures.ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="fbox-exec"
                )
            return self._executor

    # ------------------------------------------------------------------
    # Body framing policy (shared by both transports)
    # ------------------------------------------------------------------

    def plan_body(self, length_header: str | None) -> BodyPlan:
        """Decide how the transport should handle one POST body.

        Keep-alive framing rules: any early 4xx MUST NOT leave unread body
        bytes on the socket — they would be parsed as the next pipelined
        request's start line.  Rejection plans therefore either drain the
        declared body first (bounded by ``max_drain_bytes``) or mark the
        connection for close so the client gets an unambiguous
        ``Connection: close`` response.
        """
        try:
            length = int(length_header or 0)
        except ValueError:
            # Unknown body length: we cannot resync, so drop the connection.
            return BodyPlan(
                close=True, error=BadRequest("invalid Content-Length header")
            )
        if length <= 0:
            # Nothing was sent, so nothing is left unread; keep-alive is
            # safe and the "body is required" 400 comes from parsing.
            return BodyPlan(read=0)
        if length > self.max_body_bytes:
            error = BadRequest(f"request body exceeds {self.max_body_bytes} bytes")
            if length > self.max_drain_bytes:
                return BodyPlan(close=True, error=error)
            return BodyPlan(drain=length, error=error)
        return BodyPlan(read=length)

    # ------------------------------------------------------------------
    # The sync surface (threaded transport)
    # ------------------------------------------------------------------

    def canonical_path(self, path: str) -> tuple[str, bool]:
        """Strip the ``/v1`` mount point: ``(unversioned path, is_legacy)``.

        Routing, handlers, and metrics labels all work on the canonical
        unversioned path, so ``/v1/quantify`` and ``/quantify`` share one
        route entry, one cache, and one ``endpoint`` label — the version
        prefix only decides whether deprecation headers are attached.
        """
        if path == API_PREFIX:
            return "/", False
        if path.startswith(API_PREFIX + "/"):
            return path[len(API_PREFIX):], False
        return path, True

    def is_post_route(self, path: str) -> bool:
        """Whether a raw (possibly versioned) path maps to a POST endpoint
        — the transports' body-read gate."""
        return self.canonical_path(path)[0] in self.post_routes

    def handle(self, request: Request) -> Response:
        """Answer one request synchronously (threaded transport).

        CPU-bound work runs under the legacy guard-thread deadline
        (:func:`run_with_deadline`) on the calling thread's behalf.
        """
        request.path, legacy = self.canonical_path(request.path)
        if legacy:
            retired = self._legacy_gone(request)
            if retired is not None:
                return self._finish(request, retired)
        route = self._route(request)
        if isinstance(route, Response):
            return self._finish(request, route, legacy)
        endpoint, run = route
        if run is None:
            run = lambda: self.run_post(request)  # noqa: E731
        return self._finish(request, self._tracked(endpoint, run), legacy)

    def _route(self, request: Request):
        """Shared routing: a ready :class:`Response`, or ``(endpoint, run)``.

        ``run`` is a zero-argument callable returning ``(status, document)``
        for everything except the POST query pipeline, which the sync and
        async surfaces execute differently (guard thread vs executor) —
        those return ``(endpoint, None)`` and are dispatched by the caller.
        """
        if self._draining:
            return self._shutdown_response()
        if request.method == "GET":
            # Split the query string: routing and metrics labels use the
            # bare path; the decoded parameters become the handler payload
            # (how ``GET /trends?dataset=…`` addresses one cube cell).
            path, _, query = request.path.partition("?")
            if path == "/metrics":
                return "/metrics", self._metrics_response
            handler = self.get_routes.get(path)
            if handler is None:
                return self._error_response(
                    NotFound(f"no such endpoint: GET {path}")
                )
            params = dict(parse_qsl(query, keep_blank_values=True)) if query else None
            # Health, readiness, and listings are never admission-controlled:
            # a saturated pool must still answer its probes.
            return path, lambda: handler(self.context, params)
        if request.method == "POST":
            if request.path not in self.post_routes:
                return self._error_response(
                    NotFound(f"no such endpoint: POST {request.path}")
                )
            return request.path, None
        return self._error_response(
            NotFound(f"no such endpoint: {request.method} {request.path}")
        )

    def handle_async(self, request: Request):
        """Answer one request on the event loop (asyncio transport).

        Returns an awaitable.  GET endpoints and the cached fast path run
        inline (they only touch synchronized in-memory state); POST query
        work is admitted via the controller's async path and executed on
        the bounded thread pool under an ``asyncio.wait_for`` deadline.
        """
        return self._handle_async(request)

    async def _handle_async(self, request: Request) -> Response:
        request.path, legacy = self.canonical_path(request.path)
        if legacy:
            retired = self._legacy_gone(request)
            if retired is not None:
                return self._finish(request, retired)
        route = self._route(request)
        if isinstance(route, Response):
            return self._finish(request, route, legacy)
        endpoint, run = route
        if run is not None:
            return self._finish(request, self._tracked(endpoint, run), legacy)
        response = await self._tracked_async(
            endpoint, lambda: self._run_post_async(request)
        )
        return self._finish(request, response, legacy)

    def _finish(
        self, request: Request, response: Response, legacy: bool = False
    ) -> Response:
        if request.close:
            response.close = True
        if legacy:
            # RFC 8594-style deprecation signalling on unversioned paths;
            # the response itself stays byte-identical to /v1.
            response.headers.setdefault("Deprecation", "true")
            response.headers.setdefault("Sunset", LEGACY_SUNSET)
        return response

    def _legacy_gone(self, request: Request) -> Response | None:
        """410 for retired unversioned paths (``--legacy-routes gone``).

        Only paths that *would* route get the pointer — an unknown legacy
        path stays an ordinary 404, so probes don't learn retired-route
        names that never existed.  In ``serve`` mode this returns ``None``
        and the deprecated passthrough (headers attached by
        :meth:`_finish`) still answers.
        """
        if self.legacy_routes != "gone":
            return None
        bare = request.path.partition("?")[0]
        known = (
            bare in self.post_routes
            or bare in self.get_routes
            or bare == "/metrics"
        )
        if not known:
            return None
        return self._error_response(
            Gone(
                f"unversioned path {bare!r} was retired; use "
                f"{API_PREFIX}{bare} (see GET {API_PREFIX}/schema)",
                extra={"v1_path": API_PREFIX + bare},
            )
        )

    def _shutdown_response(self) -> Response:
        response = self._error_response(
            ShuttingDown(
                "service is shutting down; retry against another instance"
            )
        )
        response.close = True
        return response

    def _error_response(self, error: ServiceError) -> Response:
        return Response(
            error.status,
            _error_body(error),
            retry_after=error.retry_after,
        )

    # ------------------------------------------------------------------
    # The tracked section (metrics parity for both surfaces)
    # ------------------------------------------------------------------

    def _tracked(self, endpoint: str, run) -> Response:
        """Run one request with metrics: in-flight, latency, status counts."""
        metrics = self.context.metrics
        metrics.request_started(endpoint)
        started = perf_counter()
        status = 500
        content_type = "application/json"
        retry_after: float | None = None
        try:
            status, document = run()
            body = (
                document if isinstance(document, bytes) else _json_bytes(document)
            )
            if endpoint == "/metrics":
                content_type = _METRICS_CONTENT_TYPE
        except ServiceError as error:
            status = error.status
            retry_after = error.retry_after
            if isinstance(error, RequestTimeout):
                metrics.record_timeout()
            body = _error_body(error)
        except Exception as error:  # pragma: no cover - defensive
            status = 500
            body = _internal_error_body(error)
        # Count the request before its bytes reach the socket: a client that
        # reads its response and immediately scrapes /metrics must find the
        # request already recorded.
        metrics.request_finished(endpoint, status, perf_counter() - started)
        return Response(status, body, content_type, retry_after=retry_after)

    async def _tracked_async(self, endpoint: str, run) -> Response:
        """The :meth:`_tracked` twin for the asyncio surface."""
        metrics = self.context.metrics
        metrics.request_started(endpoint)
        started = perf_counter()
        status = 500
        content_type = "application/json"
        retry_after: float | None = None
        try:
            status, document = await run()
            body = (
                document if isinstance(document, bytes) else _json_bytes(document)
            )
            if endpoint == "/metrics":
                content_type = _METRICS_CONTENT_TYPE
        except ServiceError as error:
            status = error.status
            retry_after = error.retry_after
            if isinstance(error, RequestTimeout):
                metrics.record_timeout()
            body = _error_body(error)
        except Exception as error:  # pragma: no cover - defensive
            status = 500
            body = _internal_error_body(error)
        metrics.request_finished(endpoint, status, perf_counter() - started)
        return Response(status, body, content_type, retry_after=retry_after)

    # ------------------------------------------------------------------
    # The POST query pipeline
    # ------------------------------------------------------------------

    def _parse_payload(self, request: Request):
        """Raise the framing rejection (if any) and decode the JSON body."""
        if request.framing_error is not None:
            raise request.framing_error
        if not request.body:
            raise BadRequest("request body is required")
        try:
            return json.loads(request.body)
        except json.JSONDecodeError as error:
            raise BadRequest(f"request body is not valid JSON: {error}") from None

    def _fast_path(self, path: str, payload) -> dict | None:
        """A cached answer served without admission or execution, or None.

        Only taken when no fault injector is attached: chaos runs must push
        every request through the full pipeline so scripted latency and
        handler faults fire deterministically.  A parse failure falls
        through silently — the slow path re-raises it with seed-identical
        admission accounting.
        """
        context = self.context
        if context.faults is not None:
            return None
        parser = REQUEST_PARSERS.get(path)
        if parser is None:
            return None
        try:
            parsed = parser(context, payload)
        except ServiceError:
            return None
        hit = context.cache.peek(parsed.key)
        if hit is None:
            return None
        return {**hit, "cached": True}

    def _execute_fn(self, path: str, payload):
        """The CPU-bound part of one POST: faults, then the handler."""
        context = self.context
        handler = self.post_routes[path]

        def execute():
            if context.faults is not None:
                context.faults.fail("handler", path)
                context.faults.delay(path)
            return handler(context, payload)

        return execute

    def _execute_shard(self, path: str, payload) -> dict:
        """One POST on the sharded path: front-side read, else route.

        With the columnar core, ``/quantify`` and ``/compare`` are answered
        on the front by *attaching* to the owning worker's published
        shared-memory segment — the worker roundtrip (and its queue) is
        skipped entirely.  Anything the segment cannot answer — other
        endpoints, nothing published yet, a racing re-publish, a payload
        error — signals :class:`SegmentMiss` and falls back to the worker,
        whose response is byte-identical.  Chaos runs (an attached fault
        injector) always route so worker-side handler faults keep firing.
        """
        if self.context.faults is None:
            try:
                return handle_front_read(self.context, path, payload)
            except SegmentMiss:
                pass
        return self._execute_routed(path, payload)

    def _execute_routed(self, path: str, payload) -> dict:
        """One POST answered by the shard pool instead of in-process.

        Handler/latency faults and the request deadline are the owning
        worker's job (firing them here too would double-count chaos and
        timeouts); the front only routes, then mirrors the fresh answer
        into its own last-known-good store so degraded ``allow_stale``
        answers survive the owning worker dying.
        """
        document = self.context.router.execute(path, payload, self.request_timeout)
        if path == "/observations" and isinstance(document, dict):
            # The owning worker bumped its private generation counter; sync
            # the front's so /datasets and cache keys reflect the live state.
            dataset = document.get("dataset")
            generation = document.get("generation")
            if isinstance(dataset, str) and isinstance(generation, int):
                self.context.registry.sync_generation(dataset, generation)
        self._warm_stale(path, payload, document)
        return document

    def _warm_stale(self, path: str, payload, document) -> None:
        if not isinstance(document, dict) or document.get("degraded"):
            return
        parser = REQUEST_PARSERS.get(path)
        if parser is None:
            return
        try:
            parsed = parser(self.context, payload)
        except ServiceError:
            return
        stored = {key: value for key, value in document.items() if key != "cached"}
        self.context.stale.put(parsed.stale_key, (stored, parsed.generation))
        # Mirror into the result cache too: a repeat of this request is then
        # a front-side hit ("cached": true) on every backend, which keeps
        # responses byte-identical whether the repeat would have been served
        # by the worker's cache (dict core) or a segment read (columnar).
        self.context.cache.put(parsed.key, stored)

    def _require_admin(self, request: Request) -> None:
        """Enforce ``--admin-token`` on admin endpoints (no-op when unarmed).

        The token travels as ``X-Admin-Token`` or ``Authorization: Bearer``;
        a mismatch is a non-retryable 403.  An unarmed instance (no token
        configured) leaves the admin surface open — the documented local-
        development default.
        """
        token = self.admin_token
        if not token:
            return
        headers = request.headers or {}
        supplied = headers.get("x-admin-token")
        if supplied is None:
            authorization = headers.get("authorization", "")
            if authorization.lower().startswith("bearer "):
                supplied = authorization[7:].strip()
        if supplied != token:
            raise Forbidden(
                "admin endpoints require a valid X-Admin-Token (or "
                "Authorization: Bearer) header"
            )

    def _admin_shards(self, request: Request, payload) -> dict:
        """``POST /admin/shards`` — live-resize the worker pool.

        Front-only: dispatched before admission control (an overloaded pool
        is exactly when an operator grows it) and before the router, so it
        never competes with the query traffic it is reshaping.
        """
        self._require_admin(request)
        router = self.context.router
        if router is None:
            raise Unprocessable(
                "live shard-pool resize requires --shards; this instance "
                "executes queries in-process"
            )
        if not isinstance(payload, dict):
            raise BadRequest(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        return router.resize(payload.get("count"))

    def _register_dataset(self, request: Request, payload) -> dict:
        """``POST /datasets`` — register a scenario-backed dataset at runtime.

        Admin-gated like the resize surface, and dispatched ahead of
        admission control for the same reason: registration is operator
        traffic, not query traffic.  The dataset stays lazy — the first
        query against it triggers the build on whichever side owns it.
        Name collisions are a hard 409 (:class:`DatasetExists`); generation
        semantics match re-registering a spec (the tag starts at 1 and
        every later ingest bumps it).
        """
        self._require_admin(request)
        if not isinstance(payload, dict):
            raise BadRequest(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise BadRequest("field 'name' must be a non-empty string")
        scenario = payload.get("scenario")
        if not isinstance(scenario, str) or not scenario:
            raise BadRequest("field 'scenario' must be a non-empty string")
        overrides = payload.get("overrides")
        if overrides is None:
            overrides = {}
        if not isinstance(overrides, dict):
            raise BadRequest("field 'overrides' must be a JSON object")
        description = payload.get("description")
        if description is not None and not isinstance(description, str):
            raise BadRequest("field 'description' must be a string")
        # Lazy import: repro.scenarios imports service modules for its
        # error types, so the dependency must point this way at call time.
        from ..scenarios import scenario_spec

        registry = self.context.registry
        with self._register_lock:
            if name in registry.names():
                raise DatasetExists(
                    f"dataset {name!r} is already registered; runtime "
                    "registration never replaces a live dataset"
                )
            spec = scenario_spec(name, scenario, overrides, description=description)
            registry.register(spec)
        router = self.context.router
        if router is not None:
            # Broadcast after the front registers: a worker that is down
            # right now inherits the spec anyway when its respawn re-reads
            # the front registry.
            router.register_dataset(spec)
        return {
            "dataset": name,
            "scenario": scenario,
            "overrides": overrides,
            "site": spec.site,
            "generation": registry.generation(name),
            "shard": router.shard_of(name) if router is not None else 0,
        }

    def run_post(self, request: Request) -> tuple[int, dict]:
        """The sync pipeline body; raises :class:`ServiceError` on rejection."""
        context = self.context
        path = request.path
        payload = self._parse_payload(request)
        if path == "/admin/shards":
            return 200, self._admin_shards(request, payload)
        if path == "/datasets":
            return 200, self._register_dataset(request, payload)
        fast = self._fast_path(path, payload)
        if fast is not None:
            return 200, fast
        if context.router is not None:
            # The worker enforces the deadline (and raises the timeout the
            # router relays back); wrapping the roundtrip in another guard
            # thread would count every slow request twice.
            run = lambda: self._execute_shard(path, payload)  # noqa: E731
        else:
            execute = self._execute_fn(path, payload)
            run = lambda: run_with_deadline(  # noqa: E731
                execute, self.request_timeout, context.metrics
            )

        def admitted():
            if context.admission is None:
                return run()
            with context.admission.admit():
                return run()

        try:
            return 200, admitted()
        except (RequestTimeout, CircuitOpen) as error:
            # Graceful degradation: requests that opted in with
            # ``allow_stale`` get the last-known-good answer, loudly
            # marked, instead of the error.
            degraded = resolve_degraded(context, path, payload, reason=error.kind)
            if degraded is None:
                raise
            return 200, degraded

    async def _run_post_async(self, request: Request) -> tuple[int, dict]:
        """The async pipeline body: same decisions, executor-bound work."""
        context = self.context
        path = request.path
        payload = self._parse_payload(request)
        if path == "/admin/shards":
            # A resize blocks on worker sockets for seconds; keep the loop
            # free by running it on the pool like any routed call.
            admin = lambda: self._admin_shards(request, payload)  # noqa: E731
            return 200, await asyncio.wrap_future(
                self._ensure_executor().submit(admin)
            )
        if path == "/datasets":
            # Registration broadcasts over worker sockets; same pool hop.
            register = lambda: self._register_dataset(request, payload)  # noqa: E731
            return 200, await asyncio.wrap_future(
                self._ensure_executor().submit(register)
            )
        fast = self._fast_path(path, payload)
        if fast is not None:
            return 200, fast
        if context.router is not None:
            # Routed calls block on a worker socket, not the CPU: run them
            # on the pool to keep the loop free, but with no wait_for —
            # the worker owns the deadline (see run_post).
            routed = lambda: self._execute_shard(path, payload)  # noqa: E731
            execute_async = lambda: asyncio.wrap_future(  # noqa: E731
                self._ensure_executor().submit(routed)
            )
        else:
            execute = self._execute_fn(path, payload)
            execute_async = lambda: self._execute_async(execute)  # noqa: E731
        try:
            if context.admission is None:
                return 200, await execute_async()
            await context.admission.acquire_async()
            try:
                return 200, await execute_async()
            finally:
                context.admission.release()
        except (RequestTimeout, CircuitOpen) as error:
            degraded = resolve_degraded(context, path, payload, reason=error.kind)
            if degraded is None:
                raise
            return 200, degraded

    async def _execute_async(self, execute):
        """Run ``execute`` on the bounded pool under the request deadline.

        On timeout the pool task is *abandoned*, exactly like the guard
        thread: it keeps running (a late success still warms caches), the
        abandoned counter is bumped, and a late failure is logged once via
        a done-callback (which fires immediately if the failure already
        happened — the same race the guard-thread lock protocol closes).
        """
        timeout = self.request_timeout
        future = self._ensure_executor().submit(execute)
        wrapped = asyncio.wrap_future(future)
        if not timeout or timeout <= 0:
            return await wrapped
        try:
            return await asyncio.wait_for(asyncio.shield(wrapped), timeout)
        except (asyncio.TimeoutError, TimeoutError):
            self._abandon(future, wrapped)
            raise _deadline_error(timeout) from None

    def _abandon(
        self,
        future: concurrent.futures.Future,
        wrapped: asyncio.Future,
    ) -> None:
        metrics = self.context.metrics
        if metrics is not None:
            metrics.record_abandoned()
        # Retrieve the asyncio mirror's eventual exception so the loop never
        # warns about it; the authoritative log comes from the pool future.
        wrapped.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )

        def _report(done: concurrent.futures.Future) -> None:
            if done.cancelled():
                return
            error = done.exception()
            if error is not None:
                _log_abandoned_failure(error)

        future.add_done_callback(_report)

    # ------------------------------------------------------------------
    # /metrics
    # ------------------------------------------------------------------

    def _metrics_response(self) -> tuple[int, bytes]:
        context = self.context
        cache_stats = dict(context.cache.stats())
        build_counts = dict(context.registry.build_counts())
        breaker_states = context.registry.breaker_states()
        fault_stats = (
            context.faults.snapshot() if context.faults is not None else None
        )
        # Ingest/alert counters ride in extra_counters on every backend:
        # in-process they are this context's manager totals; under sharding
        # the workers' counters are summed on top below.
        extra_counters = dict(context.ingest.counters())
        if context.router is not None:
            # Under sharding the truth for caches, builds, index accesses,
            # abandonment/degradation, dataset breakers, and fired faults
            # lives in the workers; fold their snapshots into the front's
            # exposition so one scrape covers the whole logical service.
            merged = context.router.merged_observability()
            for stats in merged["cache"]:
                for key in (
                    "hits", "misses", "evictions", "expirations",
                    "size", "capacity",
                ):
                    cache_stats[key] = cache_stats.get(key, 0) + stats.get(key, 0)
            for builds in merged["builds"]:
                for key in (
                    "cube_builds", "family_builds", "fboxes",
                    "delta_applies", "delta_cells", "delta_lists",
                    "segment_attaches",
                ):
                    build_counts[key] = build_counts.get(key, 0) + builds.get(key, 0)
            breaker_states = merged["breakers"]
            if fault_stats is not None or merged["faults"]:
                fault_stats = list(fault_stats or ()) + list(merged["faults"])
            for key in (
                "sorted_accesses", "random_accesses",
                "abandoned_requests", "degraded_responses",
            ):
                extra_counters.setdefault(key, 0)
            for counters in merged["counters"]:
                for key in extra_counters:
                    extra_counters[key] += int(counters.get(key, 0))
        text = render_metrics(
            context.metrics,
            cache_stats,
            build_counts,
            admission_stats=(
                context.admission.snapshot()
                if context.admission is not None
                else None
            ),
            breaker_states=breaker_states,
            fault_stats=fault_stats,
            extra_counters=extra_counters,
        )
        return 200, text.encode("utf-8")


def make_app(
    registry: DatasetRegistry | None = None,
    cache_size: int = 256,
    cache_ttl: float | None = None,
    request_timeout: float | None = 30.0,
    max_concurrency: int = 8,
    queue_depth: int = 16,
    faults: FaultInjector | None = None,
    executor_workers: int | None = None,
    shards: int = 0,
    alert_threshold: float | None = None,
    core: str = "dict",
    admin_token: str | None = None,
    legacy_routes: str = "gone",
) -> FBoxApp:
    """Build a ready-to-serve application (no sockets involved).

    ``max_concurrency``/``queue_depth`` size the admission controller (0
    concurrency disables shedding).  ``faults`` defaults to whatever the
    ``FBOX_FAULTS`` environment variable configures (usually nothing); when
    an injector is attached it is also shared with the registry so
    ``dataset_load`` rules reach the loaders.  ``executor_workers`` sizes
    the bounded execution pool used by the asyncio transport (default: the
    admission concurrency cap).  ``shards > 0`` puts a
    :class:`~repro.service.sharding.ShardRouter` in front of that many
    worker processes — each owns the cubes for a deterministic subset of
    datasets — while ``0`` keeps the in-process execution path; responses
    are byte-identical either way.  ``alert_threshold`` arms fairness-trend
    alerting: any cell recomputed by an ingest whose value reaches the
    threshold increments ``fbox_fairness_alerts_total``.  ``core`` selects
    the F-Box storage engine: ``"dict"`` (reference) or ``"columnar"``
    (flat numpy blocks in shared-memory segments; under sharding the front
    answers ``/quantify``/``/compare`` by attaching to the owning worker's
    segment, and restarted workers re-attach instead of rebuilding).
    ``admin_token`` arms authentication for ``POST /v1/admin/shards`` (the
    live pool resize); unset, the admin surface is open — fine for local
    development, not for anything shared.  ``legacy_routes`` decides what
    unversioned paths get: ``"gone"`` (default) answers 410 with a
    ``v1_path`` pointer, ``"serve"`` keeps the deprecated passthrough with
    ``Deprecation``/``Sunset`` headers.
    """
    if core not in CORES:
        raise ValueError(f"core must be one of {CORES}, got {core!r}")
    if registry is None:
        if faults is None:
            faults = faults_from_env()
        registry = default_registry(faults=faults, core=core)
    else:
        # One injector end-to-end: reuse the registry's if it has one, else
        # share ours (or the env's) with it so dataset_load rules land.
        if faults is None:
            faults = (
                registry.faults if registry.faults is not None else faults_from_env()
            )
        if registry.faults is None:
            registry.faults = faults
        if core == "columnar":
            registry.enable_columnar()
    router = None
    if shards > 0:
        from .sharding import ShardRouter

        if registry.core == "columnar":
            # Materialize the segment namespace *before* the workers fork so
            # they all publish into the front's space (attachable reads).
            registry.segments
        router = ShardRouter(
            registry,
            shards=shards,
            request_timeout=request_timeout,
            cache_size=cache_size,
            cache_ttl=cache_ttl,
            faults=faults,
            alert_threshold=alert_threshold,
            core=registry.core,
            namespace=registry.namespace,
        )
    admission = None
    if max_concurrency > 0:
        admission = AdmissionController(
            max_concurrency=max_concurrency,
            max_queue=queue_depth,
            queue_timeout=request_timeout,
        )
    context = ServiceContext(
        registry=registry,
        cache=LRUCache(cache_size, default_ttl=cache_ttl),
        metrics=ServiceMetrics(),
        stale=LRUCache(max(cache_size, 1)),
        admission=admission,
        faults=faults,
        ingest=IngestManager(alert_threshold=alert_threshold),
        router=router,
    )
    if router is not None:
        router.metrics = context.metrics
    return FBoxApp(
        context,
        request_timeout=request_timeout,
        executor_workers=executor_workers,
        admin_token=admin_token,
        legacy_routes=legacy_routes,
    )
