"""Admission control and circuit breaking for the F-Box query service.

Two independent mechanisms keep the service answering under stress:

:class:`AdmissionController`
    A bounded work queue in front of the handler pool.  At most
    ``max_concurrency`` requests execute at once; up to ``max_queue`` more
    wait their turn; everything beyond that is shed *immediately* with a
    :class:`~repro.service.errors.TooManyRequests` (HTTP 429 +
    ``Retry-After``).  Fast rejection is the point — under 4x-capacity
    overload the p99 of *accepted* requests stays bounded by
    ``(max_queue / max_concurrency + 1) × work`` instead of growing with
    the whole backlog.

:class:`CircuitBreaker`
    A per-dataset closed → open → half-open state machine guarding dataset
    loads and F-Box builds.  ``failure_threshold`` consecutive crashes open
    the circuit: further requests get an instant
    :class:`~repro.service.errors.CircuitOpen` (HTTP 503 with breaker state
    in the body) instead of re-running the expensive failing build.  After
    ``reset_timeout`` seconds one *probe* request is let through half-open;
    success closes the circuit, failure re-opens it with a fresh backoff.

Both take an injectable clock so chaos tests replay transitions against a
fake clock and assert the exact state sequence byte-for-byte.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import monotonic

from .errors import CircuitOpen, TooManyRequests

__all__ = [
    "AdmissionController",
    "BreakerConfig",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


@dataclass
class _AsyncWaiter:
    """One queued async acquirer: its loop, its wake-up future, grant state.

    ``granted`` is protected by the controller's lock.  The future is only
    ever *resolved* on its own event loop (via ``call_soon_threadsafe``), so
    a ``release()`` from a worker thread never touches asyncio state
    directly.  The authoritative fact is ``granted``: if a queue-timeout
    races the grant, the waiter sees ``granted=True`` under the lock and
    hands the slot straight back.
    """

    loop: asyncio.AbstractEventLoop
    future: asyncio.Future
    granted: bool = field(default=False)

    def wake(self) -> None:
        def _resolve(future: asyncio.Future = self.future) -> None:
            if not future.done():
                future.set_result(None)

        self.loop.call_soon_threadsafe(_resolve)


class AdmissionController:
    """Concurrency cap + bounded wait queue with fast 429 shedding.

    ``acquire()`` either starts executing immediately, waits in the bounded
    queue for a slot, or raises :class:`TooManyRequests`; every successful
    ``acquire()`` must be paired with ``release()`` (use :meth:`admit` for
    the context-managed form).  ``max_concurrency <= 0`` disables admission
    entirely (every request is accepted without accounting), matching the
    cache's "0 disables" convention.

    :meth:`acquire_async` is the event-loop twin used by the asyncio
    transport: same counters, same queue bound, same shed policy, but a
    queued request parks an ``asyncio.Future`` instead of blocking an OS
    thread.  Sync and async callers share one accounting state, so a mixed
    deployment still sheds against one global picture (freed slots are
    handed to async waiters first; thread waiters take whatever the
    condition variable wakes).
    """

    def __init__(
        self,
        max_concurrency: int = 8,
        max_queue: int = 16,
        queue_timeout: float | None = 30.0,
        retry_after: float = 1.0,
    ) -> None:
        self.max_concurrency = int(max_concurrency)
        self.max_queue = int(max_queue)
        self.queue_timeout = queue_timeout
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._async_waiters: deque[_AsyncWaiter] = deque()
        self._active = 0
        self._waiting = 0
        self.accepted = 0
        self.shed = 0

    @property
    def enabled(self) -> bool:
        return self.max_concurrency > 0

    def acquire(self) -> None:
        """Take an execution slot or raise :class:`TooManyRequests`.

        Requests beyond the cap wait in the bounded queue; requests beyond
        cap + queue — and queued requests whose ``queue_timeout`` expires —
        are shed with a 429 carrying ``Retry-After``.
        """
        if not self.enabled:
            return
        deadline = (
            None if self.queue_timeout is None else monotonic() + self.queue_timeout
        )
        with self._slot_free:
            if self._active < self.max_concurrency:
                self._active += 1
                self.accepted += 1
                return
            if self._waiting >= self.max_queue:
                self.shed += 1
                raise self._overloaded("the request queue is full")
            self._waiting += 1
            try:
                while self._active >= self.max_concurrency:
                    remaining = (
                        None if deadline is None else deadline - monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        self.shed += 1
                        raise self._overloaded(
                            f"queued longer than {self.queue_timeout:g}s"
                        )
                    self._slot_free.wait(remaining)
            finally:
                self._waiting -= 1
            self._active += 1
            self.accepted += 1

    async def acquire_async(self) -> None:
        """Take an execution slot without blocking the event loop.

        Mirrors :meth:`acquire` decision-for-decision: immediate admission
        below the cap, a bounded wait (here an awaited future rather than a
        condition variable) up to ``max_queue`` deep, and an immediate 429
        beyond that or once ``queue_timeout`` expires.
        """
        if not self.enabled:
            return
        loop = asyncio.get_running_loop()
        with self._lock:
            if self._active < self.max_concurrency:
                self._active += 1
                self.accepted += 1
                return
            if self._waiting >= self.max_queue:
                self.shed += 1
                raise self._overloaded("the request queue is full")
            waiter = _AsyncWaiter(loop=loop, future=loop.create_future())
            self._async_waiters.append(waiter)
            self._waiting += 1
        try:
            if self.queue_timeout is None:
                await waiter.future
            else:
                await asyncio.wait_for(waiter.future, self.queue_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            with self._lock:
                if waiter.granted:
                    # release() granted the slot in the same instant the
                    # timeout fired; we are abandoning, so pass it on.
                    self._release_locked()
                else:
                    self._async_waiters.remove(waiter)
                    self._waiting -= 1
                self.shed += 1
            raise self._overloaded(
                f"queued longer than {self.queue_timeout:g}s"
            ) from None

    def release(self) -> None:
        """Give the slot back and wake one queued request."""
        if not self.enabled:
            return
        with self._slot_free:
            self._release_locked()

    def _release_locked(self) -> None:
        """Free one slot and hand it to a waiter (caller holds the lock)."""
        self._active = max(0, self._active - 1)
        while self._async_waiters and self._active < self.max_concurrency:
            waiter = self._async_waiters.popleft()
            self._waiting -= 1
            self._active += 1
            self.accepted += 1
            waiter.granted = True
            waiter.wake()
            return
        self._slot_free.notify()

    @contextmanager
    def admit(self):
        """``with admission.admit(): ...`` — acquire/release pairing."""
        self.acquire()
        try:
            yield
        finally:
            self.release()

    def _overloaded(self, reason: str) -> TooManyRequests:
        return TooManyRequests(
            f"service is at capacity ({reason}); retry after "
            f"{self.retry_after:g}s",
            retry_after=self.retry_after,
            extra={
                "max_concurrency": self.max_concurrency,
                "max_queue": self.max_queue,
            },
        )

    def snapshot(self) -> dict:
        """Consistent gauges and counters for /metrics."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "max_concurrency": self.max_concurrency,
                "max_queue": self.max_queue,
                "active": self._active,
                "queue_depth": self._waiting,
                "accepted": self.accepted,
                "shed": self.shed,
            }


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables for one circuit breaker.

    ``failure_threshold`` consecutive failures open the circuit;
    ``reset_timeout`` seconds later one half-open probe is allowed.
    """

    failure_threshold: int = 3
    reset_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0, got {self.reset_timeout}")


class CircuitBreaker:
    """Closed/open/half-open breaker with an auditable transition log.

    Protocol: call :meth:`allow` before the protected operation (it raises
    :class:`CircuitOpen` when quarantined), then exactly one of
    :meth:`record_success`, :meth:`record_failure`, or :meth:`record_bypass`
    afterwards.  ``record_bypass`` is for outcomes that say nothing about
    dataset health (e.g. a 422 for an invalid measure) — it releases a
    half-open probe slot without moving the state machine.

    The transition log (``"closed->open"`` strings, in order) is the
    determinism contract chaos tests assert byte-for-byte.
    """

    def __init__(
        self,
        name: str,
        config: BreakerConfig | None = None,
        clock=time.monotonic,
    ) -> None:
        self.name = name
        self.config = config if config is not None else BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False
        self._transitions: list[str] = []

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    def _transition(self, state: str) -> None:
        self._transitions.append(f"{self._state}->{state}")
        self._state = state

    def allow(self) -> None:
        """Gate one protected operation; raises :class:`CircuitOpen` when shut.

        In the open state, once ``reset_timeout`` has elapsed the breaker
        moves to half-open and admits exactly one probe; concurrent calls
        during the probe are still rejected.
        """
        with self._lock:
            if self._state == CLOSED:
                return
            now = self._clock()
            if self._state == OPEN:
                elapsed = now - (self._opened_at or now)
                if elapsed < self.config.reset_timeout:
                    raise self._open_error(self.config.reset_timeout - elapsed)
                self._transition(HALF_OPEN)
                self._probe_in_flight = True
                return
            # HALF_OPEN: one probe at a time.
            if self._probe_in_flight:
                raise self._open_error(self.config.reset_timeout)
            self._probe_in_flight = True

    def record_success(self) -> None:
        """The protected operation worked: close (or keep closed) the circuit."""
        with self._lock:
            self._probe_in_flight = False
            self._failures = 0
            if self._state != CLOSED:
                self._transition(CLOSED)
            self._opened_at = None

    def record_failure(self) -> None:
        """The protected operation crashed: count it, maybe open the circuit."""
        with self._lock:
            self._probe_in_flight = False
            if self._state == HALF_OPEN:
                # The probe failed: back to quarantine with a fresh backoff.
                self._transition(OPEN)
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.config.failure_threshold:
                self._transition(OPEN)
                self._opened_at = self._clock()

    def record_bypass(self) -> None:
        """The operation ended for reasons unrelated to dataset health."""
        with self._lock:
            self._probe_in_flight = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def retry_in(self) -> float | None:
        """Seconds until the next half-open probe (None when not open)."""
        with self._lock:
            if self._state != OPEN or self._opened_at is None:
                return None
            return max(
                0.0, self.config.reset_timeout - (self._clock() - self._opened_at)
            )

    def transition_log(self) -> tuple[str, ...]:
        """Every state transition so far, oldest first."""
        with self._lock:
            return tuple(self._transitions)

    def snapshot(self) -> dict:
        """State, counters, and the transition log for /readyz and /metrics."""
        with self._lock:
            retry_in = None
            if self._state == OPEN and self._opened_at is not None:
                retry_in = max(
                    0.0,
                    self.config.reset_timeout - (self._clock() - self._opened_at),
                )
            return {
                "dataset": self.name,
                "state": self._state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.config.failure_threshold,
                "reset_timeout": self.config.reset_timeout,
                "retry_in": retry_in,
                "transitions": list(self._transitions),
            }

    def _open_error(self, retry_in: float) -> CircuitOpen:
        return CircuitOpen(
            f"dataset {self.name!r} is quarantined: its load/build keeps "
            f"failing ({self._failures} consecutive); next probe in "
            f"{max(0.0, retry_in):.1f}s",
            retry_after=max(0.0, retry_in),
            extra={
                "breaker": {
                    "dataset": self.name,
                    "state": self._state,
                    "consecutive_failures": self._failures,
                    "retry_in": max(0.0, retry_in),
                }
            },
        )
