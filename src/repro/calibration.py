"""Paper-derived calibration targets for the synthetic substrates.

We do not have the authors' 2019 crawls, so the simulators in
:mod:`repro.marketplace` and :mod:`repro.searchengine` are *calibrated*: the
bias intensities that drive their ranking models are derived from the
unfairness values the paper reports, so the reproduced experiments match the
paper in **shape** — which groups/jobs/locations are most and least unfair,
and which breakdowns reverse — without pretending to match absolute numbers.

Everything in this module is data transcribed from the paper's §5 tables,
plus the override sets that encode the comparison results (Tables 12–21).
DESIGN.md §2 documents the substitution rationale.
"""

from __future__ import annotations

__all__ = [
    "TASKRABBIT_GROUP_EMD",
    "TASKRABBIT_GROUP_EXPOSURE",
    "TASKRABBIT_JOB_EMD",
    "TASKRABBIT_JOB_EXPOSURE",
    "TASKRABBIT_UNFAIREST_LOCATIONS",
    "TASKRABBIT_FAIREST_LOCATIONS",
    "PROFILE_PENALTY",
    "JOB_BIAS",
    "LOCATION_BIAS",
    "FEMALE_FAIRER_LOCATIONS",
    "JOB_ETHNICITY_OVERRIDES",
    "JOB_ETHNICITY_BOOSTS",
    "LOCATION_CATEGORY_OVERRIDES",
    "LOCATION_SUBJOB_OVERRIDES",
    "GOOGLE_GROUP_DIVERGENCE",
    "GOOGLE_LOCATION_DIVERGENCE",
    "GOOGLE_QUERY_DIVERGENCE",
    "GOOGLE_FEMALE_FAIRER_LOCATIONS",
    "GOOGLE_QUERY_ETHNICITY_OVERRIDES",
    "GOOGLE_LOCATION_SUBQUERY_OVERRIDES",
    "profile_key",
]

# ---------------------------------------------------------------------------
# TaskRabbit quantification targets (paper Tables 8–11)
# ---------------------------------------------------------------------------

TASKRABBIT_GROUP_EMD: dict[str, float] = {
    # Table 8, EMD column (unfairest → fairest).
    "Asian Female": 0.876,
    "Asian Male": 0.755,
    "Black Female": 0.726,
    "Asian": 0.694,
    "Black Male": 0.578,
    "White Female": 0.542,
    "Black": 0.498,
    "Male": 0.468,
    "Female": 0.468,
    "White": 0.448,
    "White Male": 0.421,
}

TASKRABBIT_GROUP_EXPOSURE: dict[str, float] = {
    # Table 8, Exposure column.
    "Asian Female": 0.821,
    "Asian Male": 0.662,
    "Black Female": 0.615,
    "Asian": 0.594,
    "Black Male": 0.413,
    "White Female": 0.359,
    "Black": 0.341,
    "Female": 0.299,
    "White Male": 0.154,
    "Male": 0.117,
    "White": 0.104,
}

TASKRABBIT_JOB_EMD: dict[str, float] = {
    # Table 9, EMD column.
    "Handyman": 0.692,
    "Yard Work": 0.672,
    "Event Staffing": 0.639,
    "General Cleaning": 0.611,
    "Moving": 0.604,
    "Furniture Assembly": 0.541,
    "Run Errands": 0.519,
    "Delivery": 0.499,
}

TASKRABBIT_JOB_EXPOSURE: dict[str, float] = {
    # Table 9, Exposure column.
    "Handyman": 0.515,
    "Event Staffing": 0.504,
    "Yard Work": 0.5,
    "General Cleaning": 0.456,
    "Moving": 0.418,
    "Furniture Assembly": 0.383,
    "Run Errands": 0.352,
    "Delivery": 0.331,
}

TASKRABBIT_UNFAIREST_LOCATIONS: dict[str, float] = {
    # Table 10, EMD column (the 10 least fair cities).
    "Birmingham, UK": 1.0,
    "Oklahoma City, OK": 0.998,
    "Bristol, UK": 0.91,
    "Manchester, UK": 0.851,
    "New Haven, CT": 0.838,
    "Milwaukee, WI": 0.824,
    "Indianapolis, IN": 0.815,
    "Nashville, TN": 0.808,
    "Detroit, MI": 0.806,
    "Memphis, TN": 0.80,
}

TASKRABBIT_FAIREST_LOCATIONS: dict[str, float] = {
    # Table 11, EMD column (the 10 fairest cities).
    "Chicago, IL": 0.274,
    "San Francisco, CA": 0.286,
    "Washington, DC": 0.329,
    "Los Angeles, CA": 0.33,
    "Boston, MA": 0.353,
    "Atlanta, GA": 0.4,
    "Houston, TX": 0.417,
    "Orlando, FL": 0.431,
    "Philadelphia, PA": 0.45,
    "San Diego, CA": 0.454,
}

# ---------------------------------------------------------------------------
# Simulator bias intensities derived from the targets
# ---------------------------------------------------------------------------


def profile_key(gender: str, ethnicity: str) -> str:
    """Canonical display key for a full profile (e.g. ``"Asian Female"``)."""
    return f"{ethnicity} {gender}"


def _rescale(values: dict[str, float], low: float, high: float) -> dict[str, float]:
    """Map a target table linearly onto ``[low, high]``."""
    smallest = min(values.values())
    largest = max(values.values())
    span = largest - smallest
    if span == 0:
        return {key: (low + high) / 2.0 for key in values}
    return {
        key: low + (value - smallest) / span * (high - low)
        for key, value in values.items()
    }


#: Score penalty applied to each full demographic profile, derived from the
#: Table 8 EMD ordering.  White Males (the reference group) get no penalty;
#: Asian Females the largest.
PROFILE_PENALTY: dict[str, float] = _rescale(
    {
        key: TASKRABBIT_GROUP_EMD[key]
        for key in (
            "Asian Female",
            "Asian Male",
            "Black Female",
            "Black Male",
            "White Female",
            "White Male",
        )
    },
    low=0.0,
    high=1.0,
)

#: Per-job multiplier on the demographic penalty (Table 9 EMD ordering).
JOB_BIAS: dict[str, float] = _rescale(TASKRABBIT_JOB_EMD, low=0.35, high=1.0)

#: Per-location multiplier (Tables 10 and 11).  Cities absent from both
#: tables take the midpoint via :func:`location_bias`.
LOCATION_BIAS: dict[str, float] = {
    **_rescale(TASKRABBIT_UNFAIREST_LOCATIONS, low=0.80, high=1.0),
    **_rescale(TASKRABBIT_FAIREST_LOCATIONS, low=0.06, high=0.34),
    # The SF Bay Area sits just outside Table 11's ten fairest cities, yet
    # Table 15 shows it fairer than Chicago *for General Cleaning*; the
    # category override below carries that interaction.
    "San Francisco Bay Area, CA": 0.42,
}

_DEFAULT_LOCATION_BIAS = 0.55


def location_bias(city: str) -> float:
    """Penalty multiplier for a city (midpoint for uncalibrated cities)."""
    return LOCATION_BIAS.get(city, _DEFAULT_LOCATION_BIAS)


#: Cities where *females* are treated more fairly than males, reversing the
#: overall trend — paper Table 12 (and the Chicago/Nashville/San Francisco
#: claim in the introduction).  In these cities the gender component of the
#: penalty lands on men instead of women.
FEMALE_FAIRER_LOCATIONS: frozenset[str] = frozenset(
    {
        "Charlotte, NC",
        "Chicago, IL",
        "Nashville, TN",
        "Norfolk, VA",
        "San Francisco Bay Area, CA",
        "St. Louis, MO",
    }
)

#: (job, ethnicity) → multiplier on that ethnicity's penalty for that job.
#: Encodes Tables 13–14: overall, Lawn Mowing is less fair than Event
#: Decorating; the Asian penalty is inflated on Lawn Mowing and deflated on
#: Event Decorating to preserve that, while the reversal for Whites is
#: produced through :data:`JOB_ETHNICITY_BOOSTS` below.
JOB_ETHNICITY_OVERRIDES: dict[tuple[str, str], float] = {
    ("Lawn Mowing", "Asian"): 1.40,
    ("Event Decorating", "Asian"): 0.70,
    ("Lawn Mowing", "Black"): 0.75,
    ("Event Decorating", "Black"): 1.15,
}

#: (job, ethnicity) → additive score *boost* (a negative penalty).  A boosted
#: group floats above its comparable groups, which raises its measured
#: unfairness for that job without raising everyone else's: this is how the
#: White reversal of Tables 13–14 (Event Decorating less fair than Lawn
#: Mowing for Whites, against the overall trend) is realized.
JOB_ETHNICITY_BOOSTS: dict[tuple[str, str], float] = {
    ("Event Decorating", "White"): 0.60,
}

#: (location, category) → multiplier on the location's penalty intensity
#: for a whole job category.  Encodes Table 15's "All" row: the SF Bay Area
#: is fairer than Chicago for General Cleaning work overall.
LOCATION_CATEGORY_OVERRIDES: dict[tuple[str, str], float] = {
    ("San Francisco Bay Area, CA", "General Cleaning"): 0.30,
    ("Chicago, IL", "General Cleaning"): 8.0,
}

#: (location, sub-job) → multiplier on the location's penalty intensity for
#: that sub-job, compounding any category override.  Encodes Table 15's
#: breakdown rows: three General Cleaning sub-jobs where the SF Bay Area is
#: *less* fair than Chicago, reversing the category-wide comparison.
LOCATION_SUBJOB_OVERRIDES: dict[tuple[str, str], float] = {
    ("San Francisco Bay Area, CA", "Back To Organized"): 7.0,
    ("San Francisco Bay Area, CA", "Organize & Declutter"): 6.5,
    ("San Francisco Bay Area, CA", "Organize Closet"): 7.5,
    ("Chicago, IL", "Back To Organized"): 0.30,
    ("Chicago, IL", "Organize & Declutter"): 0.35,
    ("Chicago, IL", "Organize Closet"): 0.30,
}

# ---------------------------------------------------------------------------
# Google job search calibration (§5.2.2, Tables 16–21)
# ---------------------------------------------------------------------------

#: Personalization divergence per demographic profile: how much a user's
#: personalized results drift from the base ranking.  §5.2.2: White Females'
#: results were most different, Black Males' most similar.
GOOGLE_GROUP_DIVERGENCE: dict[str, float] = {
    "White Female": 1.0,
    "Asian Female": 0.74,
    "Asian Male": 0.72,
    "Black Female": 0.62,
    "White Male": 0.45,
    "Black Male": 0.25,
}

#: Per-location personalization strength.  §5.2.2: Washington, DC fairest
#: (no divergence at all), London, UK unfairest.
GOOGLE_LOCATION_DIVERGENCE: dict[str, float] = {
    "London, UK": 1.0,
    "Birmingham, UK": 0.92,
    "Bristol, UK": 0.86,
    "Manchester, UK": 0.80,
    "Detroit, MI": 0.74,
    "New York City, NY": 0.66,
    "Pittsburgh, PA": 0.58,
    "Charlotte, NC": 0.52,
    "Boston, MA": 0.46,
    "San Diego, CA": 0.40,
    "Los Angeles, CA": 0.34,
    "Washington, DC": 0.0,
}

#: Per-query personalization strength.  §5.2.2: Yard Work most unfair,
#: Furniture Assembly most fair.
GOOGLE_QUERY_DIVERGENCE: dict[str, float] = {
    "yard work": 1.0,
    "general cleaning": 0.62,
    "moving job": 0.66,
    "event staffing": 0.55,
    "run errand": 0.52,
    "furniture assembly": 0.15,
}

#: Locations where females' Google results are *more* consistent than
#: males', reversing the overall ordering — Table 16's four rows.  (Table 17
#: lists a different six under Jaccard because its overall ordering differs;
#: the simulator encodes the Kendall-side set and lets the Jaccard view fall
#: where it may, as the paper itself flags this divergence for future work.)
GOOGLE_FEMALE_FAIRER_LOCATIONS: frozenset[str] = frozenset(
    {
        "Birmingham, UK",
        "Bristol, UK",
        "Detroit, MI",
        "New York City, NY",
    }
)

#: (query, ethnicity) → divergence multiplier.  Encodes Tables 18–19:
#: overall, Running Errands and General Cleaning are nearly tied, but for
#: Blacks and Asians General Cleaning diverges more.
GOOGLE_QUERY_ETHNICITY_OVERRIDES: dict[tuple[str, str], float] = {
    ("run errand", "White"): 2.6,
    ("general cleaning", "White"): 0.40,
    ("run errand", "Asian"): 0.85,
    ("general cleaning", "Asian"): 1.15,
    ("run errand", "Black"): 0.82,
    ("general cleaning", "Black"): 1.22,
}

#: (location, sub-query) → divergence multiplier.  Encodes Tables 20–21:
#: Bristol is less fair than Boston overall, but for office/private cleaning
#: sub-queries Boston diverges more.
GOOGLE_LOCATION_SUBQUERY_OVERRIDES: dict[tuple[str, str], float] = {
    ("Boston, MA", "office cleaning jobs"): 1.45,
    ("Bristol, UK", "office cleaning jobs"): 0.65,
    ("Boston, MA", "private cleaning jobs"): 1.60,
    ("Bristol, UK", "private cleaning jobs"): 0.55,
}
