"""repro — reproduction of "Fairness in Online Jobs: A Case Study on
TaskRabbit and Google" (Amer-Yahia et al., EDBT 2020).

A unified framework to quantify and compare group unfairness in online job
rankings, plus full simulators of the two case-study substrates:

* :mod:`repro.core` — groups and comparable groups, the four unfairness
  measures (Kendall Tau, Jaccard, EMD, Exposure), the unfairness cube, the
  three inverted-index families, Fagin-style top-k quantification
  (Problem 1) and fairness comparison (Problem 2), all behind the
  :class:`FBox` facade.
* :mod:`repro.marketplace` — a TaskRabbit-style marketplace simulator and
  crawl protocol.
* :mod:`repro.searchengine` — a Google-job-search-style personalized engine,
  the Chrome-extension noise-control protocol, and the Prolific-style user
  study.
* :mod:`repro.labeling` — the AMT majority-vote demographic labeling step.
* :mod:`repro.experiments` — drivers regenerating every table and figure of
  the paper's evaluation (§5).

Quickstart::

    from repro import FBox, default_schema
    from repro.experiments.datasets import build_taskrabbit_dataset

    dataset = build_taskrabbit_dataset(seed=7)
    fbox = FBox.for_marketplace(dataset, default_schema(), measure="emd")
    print(fbox.quantify("group", k=5).entries)
"""

from .core import (
    AttributeSchema,
    BreakdownRow,
    ComparisonReport,
    FBox,
    Group,
    RankedList,
    TopKResult,
    UnfairnessCube,
    comparable_groups,
    compare,
    default_schema,
    enumerate_groups,
    group_lattice,
    naive_top_k,
    top_k,
    variants,
)
from .data import (
    MarketplaceDataset,
    MarketplaceObservation,
    SearchDataset,
    SearchObservation,
    SearchUser,
    WorkerProfile,
)
from .exceptions import (
    AlgorithmError,
    CubeError,
    DataError,
    IndexError_,
    MeasureError,
    ReproError,
    SchemaError,
)

__version__ = "1.0.0"

__all__ = [
    "AttributeSchema",
    "BreakdownRow",
    "ComparisonReport",
    "FBox",
    "Group",
    "RankedList",
    "TopKResult",
    "UnfairnessCube",
    "comparable_groups",
    "compare",
    "default_schema",
    "enumerate_groups",
    "group_lattice",
    "naive_top_k",
    "top_k",
    "variants",
    "MarketplaceDataset",
    "MarketplaceObservation",
    "SearchDataset",
    "SearchObservation",
    "SearchUser",
    "WorkerProfile",
    "AlgorithmError",
    "CubeError",
    "DataError",
    "IndexError_",
    "MeasureError",
    "ReproError",
    "SchemaError",
    "__version__",
]
