"""AMT majority-vote demographic labeling (paper §5.1.1).

TaskRabbit does not publish tasker demographics, so the paper had three
Amazon Mechanical Turk contributors label each profile picture with a gender
in {Male, Female} and an ethnicity in {Asian, Black, White}, taking the
majority vote.  This module simulates that step: each contributor sees the
worker's true attributes but misreads each one independently with a
configurable error rate (uniformly to one of the other category values),
and the vote aggregates the three readings.

With three labelers and per-attribute error rate ``e``, the majority label
is wrong with probability ``≈ 3e²`` for binary gender — at the default
``e = 0.05`` that is under 1% — so downstream results are robust to
labeling noise, which the tests verify explicitly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.attributes import AttributeSchema, default_schema
from ..data.schema import WorkerProfile
from ..exceptions import DataError
from ..stats.rng import derive

__all__ = ["AmtLabeler", "LabelingOutcome", "DEFAULT_ERROR_RATE", "CONTRIBUTORS_PER_PICTURE"]

DEFAULT_ERROR_RATE = 0.05
"""Per-contributor, per-attribute probability of misreading a picture."""

CONTRIBUTORS_PER_PICTURE = 3
"""The paper used three AMT contributors per profile picture."""


@dataclass(frozen=True)
class LabelingOutcome:
    """The labeled population plus an accuracy audit against ground truth."""

    workers: tuple[WorkerProfile, ...]
    total_labels: int
    incorrect_labels: int

    @property
    def accuracy(self) -> float:
        """Fraction of majority-vote labels matching the true attribute."""
        if self.total_labels == 0:
            return 1.0
        return 1.0 - self.incorrect_labels / self.total_labels


class AmtLabeler:
    """Simulated Mechanical Turk labeling pipeline.

    Parameters
    ----------
    seed:
        Root seed; each (worker, attribute, contributor) vote derives its own
        stream, so outcomes are reproducible.
    error_rate:
        Per-contributor probability of picking a wrong value.
    schema:
        The attribute schema defining the pre-defined label categories.
    contributors:
        Number of votes per picture (odd values avoid gender ties; even
        splits on ties are resolved toward the first-seen label, mirroring
        platforms that break ties by earliest submission).
    """

    def __init__(
        self,
        seed: int,
        error_rate: float = DEFAULT_ERROR_RATE,
        schema: AttributeSchema | None = None,
        contributors: int = CONTRIBUTORS_PER_PICTURE,
    ) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise DataError(f"error rate must be in [0, 1), got {error_rate}")
        if contributors < 1:
            raise DataError(f"need at least one contributor, got {contributors}")
        self.seed = seed
        self.error_rate = error_rate
        self.schema = schema if schema is not None else default_schema()
        self.contributors = contributors

    def _one_vote(
        self, true_value: str, attribute: str, worker_id: str, contributor: int
    ) -> str:
        rng = derive(self.seed, "amt", worker_id, attribute, contributor)
        if float(rng.uniform()) >= self.error_rate:
            return true_value
        alternatives = [
            value for value in self.schema.values_of(attribute) if value != true_value
        ]
        if not alternatives:
            return true_value
        return str(rng.choice(alternatives))

    def label_worker(self, worker: WorkerProfile) -> WorkerProfile:
        """Label one worker: majority vote per schema attribute.

        Non-schema attributes (e.g. the worker's city) pass through
        unchanged; features are untouched.
        """
        labeled = dict(worker.attributes)
        for attribute in self.schema.attributes:
            true_value = worker.attributes.get(attribute)
            if true_value is None:
                raise DataError(
                    f"worker {worker.worker_id!r} lacks attribute {attribute!r}"
                )
            votes = [
                self._one_vote(true_value, attribute, worker.worker_id, contributor)
                for contributor in range(self.contributors)
            ]
            counts = Counter(votes)
            best_count = max(counts.values())
            winners = [value for value, count in counts.items() if count == best_count]
            if len(winners) == 1:
                labeled[attribute] = winners[0]
            else:
                # Tie: earliest-submitted winning label prevails.
                labeled[attribute] = next(vote for vote in votes if vote in winners)
        return WorkerProfile(worker.worker_id, labeled, worker.features)

    def label_population(self, workers: list[WorkerProfile]) -> LabelingOutcome:
        """Label every worker; report aggregate accuracy against truth."""
        labeled: list[WorkerProfile] = []
        total = 0
        incorrect = 0
        for worker in workers:
            relabeled = self.label_worker(worker)
            labeled.append(relabeled)
            for attribute in self.schema.attributes:
                total += 1
                if relabeled.attributes[attribute] != worker.attributes[attribute]:
                    incorrect += 1
        return LabelingOutcome(
            workers=tuple(labeled), total_labels=total, incorrect_labels=incorrect
        )
