"""Simulated Amazon Mechanical Turk demographic labeling."""

from .amt import (
    CONTRIBUTORS_PER_PICTURE,
    DEFAULT_ERROR_RATE,
    AmtLabeler,
    LabelingOutcome,
)

__all__ = [
    "CONTRIBUTORS_PER_PICTURE",
    "DEFAULT_ERROR_RATE",
    "AmtLabeler",
    "LabelingOutcome",
]
