"""Experiment drivers regenerating every table and figure of the paper's §5."""

from .datasets import (
    DEFAULT_SEED,
    build_google_dataset,
    build_taskrabbit_dataset,
    build_taskrabbit_site,
)
from .hypotheses import Hypothesis, Verification, generate, verify
from .report import fmt, render_comparison, render_table

__all__ = [
    "DEFAULT_SEED",
    "build_google_dataset",
    "build_taskrabbit_dataset",
    "build_taskrabbit_site",
    "Hypothesis",
    "Verification",
    "generate",
    "verify",
    "fmt",
    "render_comparison",
    "render_table",
]
