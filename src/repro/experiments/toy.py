"""The paper's worked examples (Figures 1–5, Tables 1–3).

Two kinds of numbers appear in the paper's walkthrough:

* **Exactly computable** — the Figure 5 exposure example is fully
  determined by Tables 2–3: Black Females hold exposure mass ≈ 0.94
  against ≈ 4.0 for their comparable groups (confirming the natural
  logarithm in ``1/ln(1+rank)``), relevance mass 0.5 against 2.9, for an
  unfairness of ``|0.19 − 0.15| ≈ 0.04``.  :func:`figure5_exposure` runs
  the library's own exposure measure on the toy ranking and must land on
  those numbers.
* **Illustrative** — Figures 1–4 show averaged pairwise distances
  (e.g. ``(0.70 + 0.50 + 0.30)/3 = 0.50``) whose inputs are stated, not
  derived; Figure 3's "Jaccard" values (0.8, 0.5) are not even attainable
  between 3-item sets.  For these we reproduce the *computation structure*
  (average over comparable groups / user pairs) with the paper's stated
  inputs, and separately compute the true measure values on the toy data.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..core.attributes import default_schema
from ..core.groups import Group, comparable_groups
from ..core.measures.exposure import (
    exposure_deviation,
    group_exposure_mass,
    group_relevance_mass,
)
from ..core.measures.jaccard import jaccard_index
from ..core.measures.kendall import kendall_tau_distance
from ..core.rankings import RankedList
from ..data.schema import (
    MarketplaceDataset,
    MarketplaceObservation,
    SearchDataset,
    SearchObservation,
    SearchUser,
    WorkerProfile,
)

__all__ = [
    "TABLE1_RESULTS",
    "table1_dataset",
    "table2_workers",
    "table3_ranking",
    "toy_marketplace_dataset",
    "figure1_unfairness",
    "figure1_measured",
    "figure2_unfairness",
    "figure3_partial_unfairness",
    "figure3_measured",
    "figure4_unfairness",
    "Figure5Result",
    "figure5_exposure",
]

# ---------------------------------------------------------------------------
# Table 1: top-3 results for 10 users, "Home Cleaning" @ San Francisco
# ---------------------------------------------------------------------------

TABLE1_RESULTS: dict[str, tuple[str, ...]] = {
    "w1": ("b", "d", "e"),
    "w2": ("d", "b", "e"),
    "w3": ("a", "b", "c"),
    "w4": ("b", "a", "c"),
    "w5": ("a", "b", "c"),
    "w6": ("d", "a", "b"),
    "w7": ("a", "b", "d"),
    "w8": ("d", "a", "b"),
    "w9": ("a", "b", "c"),
    "w10": ("a", "b", "c"),
}

#: Demographics for the Table 1 users (the paper leaves them implicit; this
#: assignment puts two Black Females against populated comparable groups).
_TABLE1_DEMOGRAPHICS: dict[str, tuple[str, str]] = {
    "w1": ("Female", "Black"),
    "w2": ("Female", "Black"),
    "w3": ("Female", "Asian"),
    "w4": ("Female", "White"),
    "w5": ("Male", "Black"),
    "w6": ("Female", "Asian"),
    "w7": ("Male", "White"),
    "w8": ("Male", "Black"),
    "w9": ("Female", "White"),
    "w10": ("Male", "Asian"),
}

_TOY_QUERY = "Home Cleaning"
_TOY_LOCATION = "San Francisco"


def table1_dataset() -> SearchDataset:
    """Table 1 as a search dataset (one observation, ten users)."""
    users = [
        SearchUser(user_id=name, attributes={"gender": gender, "ethnicity": ethnicity})
        for name, (gender, ethnicity) in _TABLE1_DEMOGRAPHICS.items()
    ]
    observation = SearchObservation(
        query=_TOY_QUERY,
        location=_TOY_LOCATION,
        results_by_user={
            name: RankedList(items) for name, items in TABLE1_RESULTS.items()
        },
    )
    return SearchDataset(users=users, observations=[observation])


# ---------------------------------------------------------------------------
# Tables 2–3: ten workers and their ranking
# ---------------------------------------------------------------------------

_TABLE2_ROWS: tuple[tuple[str, str, str, str], ...] = (
    # (worker, gender, nationality, ethnicity) — Table 2 verbatim.
    ("w1", "Female", "America", "Asian"),
    ("w2", "Male", "America", "White"),
    ("w3", "Female", "America", "White"),
    ("w4", "Male", "Other", "Asian"),
    ("w5", "Female", "Other", "Black"),
    ("w6", "Male", "America", "Black"),
    ("w7", "Female", "America", "Black"),
    ("w8", "Male", "Other", "Black"),
    ("w9", "Male", "Other", "White"),
    ("w10", "Female", "America", "White"),
)

#: Table 3 verbatim: rank → (worker, f_q^l score).
_TABLE3_RANKING: tuple[tuple[str, float], ...] = (
    ("w3", 0.9),
    ("w8", 0.8),
    ("w6", 0.7),
    ("w2", 0.6),
    ("w1", 0.5),
    ("w4", 0.4),
    ("w7", 0.3),
    ("w5", 0.2),
    ("w9", 0.1),
    ("w10", 0.0),
)


def table2_workers() -> list[WorkerProfile]:
    """The ten workers of Table 2."""
    return [
        WorkerProfile(
            worker_id=name,
            attributes={
                "gender": gender,
                "nationality": nationality,
                "ethnicity": ethnicity,
            },
        )
        for name, gender, nationality, ethnicity in _TABLE2_ROWS
    ]


def table3_ranking(with_scores: bool = False) -> RankedList:
    """The Table 3 ranking; scores attached on request."""
    items = [name for name, _ in _TABLE3_RANKING]
    scores = {name: score for name, score in _TABLE3_RANKING} if with_scores else None
    return RankedList(items, scores)


def toy_marketplace_dataset(with_scores: bool = False) -> MarketplaceDataset:
    """Tables 2–3 as a marketplace dataset (one observation)."""
    observation = MarketplaceObservation(
        query=_TOY_QUERY,
        location=_TOY_LOCATION,
        ranking=table3_ranking(with_scores),
    )
    return MarketplaceDataset(workers=table2_workers(), observations=[observation])


# ---------------------------------------------------------------------------
# Figures 1–4: the paper's stated averages, plus true measure values
# ---------------------------------------------------------------------------


def figure1_unfairness() -> float:
    """Figure 1's illustrative average: (0.70 + 0.50 + 0.30) / 3 = 0.50."""
    return statistics.fmean((0.70, 0.50, 0.30))


def figure2_unfairness() -> float:
    """Figure 2's illustrative average: (0.45 + 0.25 + 0.65) / 3 = 0.45."""
    return statistics.fmean((0.45, 0.25, 0.65))


def figure3_partial_unfairness() -> float:
    """Figure 3's illustrative average: (0.8 + 0.5) / 2 = 0.65.

    The stated 0.8/0.5 are not attainable Jaccard indexes between 3-item
    sets; :func:`figure3_measured` computes what the toy data truly yields.
    """
    return statistics.fmean((0.8, 0.5))


def figure3_measured() -> float:
    """True avg Jaccard *index* between Black-Female and Asian-Female users."""
    dataset = table1_dataset()
    observation = dataset.observation(_TOY_QUERY, _TOY_LOCATION)
    black_females = dataset.members_in_observation(
        Group({"gender": "Female", "ethnicity": "Black"}), observation
    )
    asian_females = dataset.members_in_observation(
        Group({"gender": "Female", "ethnicity": "Asian"}), observation
    )
    pairs = [
        jaccard_index(
            observation.results_by_user[left].item_set(),
            observation.results_by_user[right].item_set(),
        )
        for left in black_females
        for right in asian_females
    ]
    return statistics.fmean(pairs)


def figure1_measured() -> float:
    """True avg Kendall distance for Black Females on the Table 1 data."""
    dataset = table1_dataset()
    observation = dataset.observation(_TOY_QUERY, _TOY_LOCATION)
    schema = default_schema()
    group = Group({"gender": "Female", "ethnicity": "Black"})
    members = dataset.members_in_observation(group, observation)
    per_group = []
    for other in comparable_groups(group, schema):
        others = dataset.members_in_observation(other, observation)
        if not others:
            continue
        per_group.append(
            statistics.fmean(
                kendall_tau_distance(
                    observation.results_by_user[left], observation.results_by_user[right]
                )
                for left in members
                for right in others
            )
        )
    return statistics.fmean(per_group)


def figure4_unfairness() -> float:
    """Figure 4's illustrative average: (0.70 + 0.50 + 0.30) / 3 = 0.50."""
    return statistics.fmean((0.70, 0.50, 0.30))


# ---------------------------------------------------------------------------
# Figure 5: exactly computable exposure walkthrough
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure5Result:
    """All intermediate quantities of the Figure 5 computation."""

    group_exposure: float
    comparable_exposure: float
    group_relevance: float
    comparable_relevance: float
    exposure_share: float
    relevance_share: float
    unfairness: float


def figure5_exposure() -> Figure5Result:
    """Reproduce Figure 5: exposure unfairness of Black Females ≈ 0.04.

    Uses the rank-proxy relevance ``1 − rank/10`` and the comparable groups
    Black Males, Asian Females and White Females (the starred workers of
    Table 2), normalizing over ``g ∪ comparables`` exactly as §3.3.2 does.
    """
    dataset = toy_marketplace_dataset()
    ranking = dataset.observation(_TOY_QUERY, _TOY_LOCATION).ranking
    schema = default_schema()
    group = Group({"gender": "Female", "ethnicity": "Black"})
    members = dataset.members_in_ranking(group, ranking)
    comparables = {
        other.name: dataset.members_in_ranking(other, ranking)
        for other in comparable_groups(group, schema)
    }
    group_exposure = group_exposure_mass(ranking, members)
    group_relevance = group_relevance_mass(ranking, members)
    comparable_exposure = sum(
        group_exposure_mass(ranking, ids) for ids in comparables.values()
    )
    comparable_relevance = sum(
        group_relevance_mass(ranking, ids) for ids in comparables.values()
    )
    unfairness = exposure_deviation(ranking, members, comparables)
    return Figure5Result(
        group_exposure=group_exposure,
        comparable_exposure=comparable_exposure,
        group_relevance=group_relevance,
        comparable_relevance=comparable_relevance,
        exposure_share=group_exposure / (group_exposure + comparable_exposure),
        relevance_share=group_relevance / (group_relevance + comparable_relevance),
        unfairness=unfairness,
    )
