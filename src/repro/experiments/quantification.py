"""Fairness-quantification experiments (§5.2; Tables 8–11, Figures 7–8).

Each function regenerates one of the paper's quantification results from a
freshly built (or cached) dataset and returns structured rows; the
benchmarks print them next to the paper's reported values.

The TaskRabbit results run on the full 5,361-query job-level crawl exactly
as the paper did — with only 8 category queries per city the per-city
averages would sit inside sampling noise (see DESIGN.md §5).  Job-category
results (Table 9) aggregate the job-level cube by category.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..core.fbox import FBox
from ..core.attributes import default_schema
from ..marketplace.catalog import JOBS_BY_CATEGORY
from ..marketplace.workers import demographic_breakdown, generate_population
from ..searchengine.jobs import GOOGLE_QUERIES
from ..searchengine.keyword_planner import term_variants
from .datasets import DEFAULT_SEED, build_google_dataset, build_taskrabbit_dataset

__all__ = [
    "figure7_8_demographics",
    "taskrabbit_fbox",
    "google_fbox",
    "table8_group_ranking",
    "table9_job_ranking",
    "table10_unfairest_locations",
    "table11_fairest_locations",
    "google_group_ranking",
    "google_location_ranking",
    "google_query_ranking",
    "scoped_drilldown",
]


def figure7_8_demographics(seed: int = DEFAULT_SEED) -> dict[str, dict[str, float]]:
    """Figures 7–8: gender and ethnicity shares of the tasker population."""
    return demographic_breakdown(generate_population(seed))


@lru_cache(maxsize=8)
def taskrabbit_fbox(
    measure: str = "emd", seed: int = DEFAULT_SEED, level: str = "job"
) -> FBox:
    """An F-Box over the TaskRabbit crawl, cube pre-materialized."""
    dataset = build_taskrabbit_dataset(seed=seed, level=level)
    fbox = FBox.for_marketplace(dataset, default_schema(), measure=measure)
    fbox.cube  # materialize once; reused by every table below
    return fbox


@lru_cache(maxsize=8)
def google_fbox(measure: str = "kendall", seed: int = DEFAULT_SEED) -> FBox:
    """An F-Box over the Google study (dense design), cube pre-materialized."""
    dataset = build_google_dataset(seed=seed, design="full")
    fbox = FBox.for_search(dataset, default_schema(), measure=measure)
    fbox.cube
    return fbox


@dataclass(frozen=True)
class RankedRow:
    """One row of a quantification table: member plus measured value."""

    member: str
    value: float


def _rows(entries) -> list[RankedRow]:
    return [RankedRow(member=str(key), value=value) for key, value in entries]


def table8_group_ranking(measure: str = "emd", seed: int = DEFAULT_SEED) -> list[RankedRow]:
    """Table 8: all 11 groups ranked from unfairest to fairest."""
    fbox = taskrabbit_fbox(measure, seed)
    return _rows(fbox.quantify("group", k=len(fbox.groups)).entries)


def table9_job_ranking(measure: str = "emd", seed: int = DEFAULT_SEED) -> list[RankedRow]:
    """Table 9: the 8 job categories ranked from unfairest to fairest.

    The cube is job-level; category values aggregate each category's
    concrete job types (the paper: "a query will be used to refer to a set
    of jobs in the same category").
    """
    fbox = taskrabbit_fbox(measure, seed)
    values = [
        RankedRow(member=category, value=fbox.aggregate(queries=list(jobs)))
        for category, jobs in JOBS_BY_CATEGORY.items()
    ]
    return sorted(values, key=lambda row: -row.value)


def table10_unfairest_locations(
    measure: str = "emd", seed: int = DEFAULT_SEED, k: int = 10
) -> list[RankedRow]:
    """Table 10: the ten least fair cities."""
    fbox = taskrabbit_fbox(measure, seed)
    return _rows(fbox.quantify("location", k=k, order="most").entries)


def table11_fairest_locations(
    measure: str = "emd", seed: int = DEFAULT_SEED, k: int = 10
) -> list[RankedRow]:
    """Table 11: the ten fairest cities."""
    fbox = taskrabbit_fbox(measure, seed)
    return _rows(fbox.quantify("location", k=k, order="least").entries)


def google_group_ranking(measure: str = "kendall", seed: int = DEFAULT_SEED) -> list[RankedRow]:
    """§5.2.2: Google groups ranked (White Females most discriminated)."""
    fbox = google_fbox(measure, seed)
    return _rows(fbox.quantify("group", k=len(fbox.groups)).entries)


def google_location_ranking(
    measure: str = "kendall", seed: int = DEFAULT_SEED
) -> list[RankedRow]:
    """§5.2.2: Google locations ranked (London unfairest, DC fairest)."""
    fbox = google_fbox(measure, seed)
    return _rows(fbox.quantify("location", k=len(fbox.locations)).entries)


def google_query_ranking(
    measure: str = "kendall", seed: int = DEFAULT_SEED
) -> list[RankedRow]:
    """§5.2.2: Google queries ranked (Yard Work unfairest, Furniture
    Assembly fairest); term-level cells aggregate to query categories."""
    fbox = google_fbox(measure, seed)
    values = [
        RankedRow(member=query, value=fbox.aggregate(queries=term_variants(query)))
        for query in GOOGLE_QUERIES
    ]
    return sorted(values, key=lambda row: -row.value)


def scoped_drilldown(
    measure: str = "emd",
    seed: int = DEFAULT_SEED,
    jobs: tuple[str, ...] = ("Handyman", "Run Errands"),
    cities: tuple[str, ...] = ("Birmingham, UK", "Detroit, MI", "Nashville, TN"),
) -> dict[str, list[RankedRow]]:
    """§5.2.1 drill-down: fairest/unfairest locations per job and jobs per city.

    Returns, for each requested job category, all cities ranked by that
    job's unfairness, and for each requested city, all job categories
    ranked — the "fairest location for Handyman is X" style findings.
    """
    fbox = taskrabbit_fbox(measure, seed)
    out: dict[str, list[RankedRow]] = {}
    for job in jobs:
        rows = [
            RankedRow(
                member=city,
                value=fbox.aggregate(queries=JOBS_BY_CATEGORY[job], locations=[city]),
            )
            for city in fbox.locations
        ]
        out[f"job:{job}"] = sorted(rows, key=lambda row: -row.value)
    for city in cities:
        rows = [
            RankedRow(
                member=category,
                value=fbox.aggregate(queries=list(jobs_), locations=[city]),
            )
            for category, jobs_ in JOBS_BY_CATEGORY.items()
        ]
        out[f"city:{city}"] = sorted(rows, key=lambda row: -row.value)
    return out
