"""Plain-text rendering of experiment results.

Every benchmark prints the rows it regenerates through these helpers, in a
stable aligned format with an optional paper-reported column next to the
measured one, so the output can be eyeballed against the paper's tables
(EXPERIMENTS.md records the comparisons).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_comparison", "fmt"]


def fmt(value: object, decimals: int = 3) -> str:
    """Format one cell: floats get fixed decimals, everything else ``str``."""
    if isinstance(value, float):
        return f"{value:.{decimals}f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    decimals: int = 3,
) -> str:
    """Render an aligned text table with a title rule."""
    rendered_rows = [[fmt(cell, decimals) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = [title, "=" * len(title), line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def render_comparison(title: str, report, decimals: int = 3) -> str:
    """Render a :class:`~repro.core.comparison.ComparisonReport`."""
    rows: list[Sequence[object]] = [
        ("All", report.overall_r1, report.overall_r2, "")
    ]
    for row in report.rows:
        rows.append(
            (
                str(row.member),
                row.value_r1,
                row.value_r2,
                "REVERSED" if row.reversed_vs_overall else "",
            )
        )
    headers = (
        report.breakdown_dimension,
        str(report.r1),
        str(report.r2),
        "vs overall",
    )
    return render_table(title, headers, rows, decimals)
