"""Fairness-comparison experiments (§5.3; Tables 4, 12–21).

Each driver runs one of the paper's Problem 2 instances against the
simulated datasets and returns the full
:class:`~repro.core.comparison.ComparisonReport` so benchmarks can print
every breakdown row next to the paper's.

Where the paper's own formulas cannot produce the published asymmetry
(Male-vs-Female under any pairwise-symmetric DIST — see EXPERIMENTS.md),
the drivers note the deviation they take: Table 12 uses the ranking-wide
exposure normalization, and the Google gender comparison (Tables 16–17) is
additionally run at the full-profile level (White Male vs White Female),
where comparable groups differ and the asymmetry is well-defined.
"""

from __future__ import annotations

from ..core.attributes import default_schema
from ..core.comparison import ComparisonReport
from ..core.fbox import FBox
from ..core.groups import Group
from ..marketplace.catalog import JOBS_BY_CATEGORY
from ..searchengine.keyword_planner import term_variants
from .datasets import DEFAULT_SEED, build_google_dataset, build_taskrabbit_dataset

__all__ = [
    "MALE",
    "FEMALE",
    "ETHNICITY_GROUPS",
    "table4_and_12_gender_by_location",
    "table13_14_jobs_by_ethnicity",
    "table15_locations_by_subjob",
    "table16_17_gender_by_location",
    "table18_19_queries_by_ethnicity",
    "table20_21_locations_by_term",
]

MALE = Group({"gender": "Male"})
FEMALE = Group({"gender": "Female"})
ETHNICITY_GROUPS = tuple(Group({"ethnicity": e}) for e in ("Asian", "Black", "White"))

_COMPARISON_GROUPS = (
    (MALE, FEMALE)
    + ETHNICITY_GROUPS
    + tuple(
        Group({"gender": gender, "ethnicity": ethnicity})
        for gender in ("Male", "Female")
        for ethnicity in ("Asian", "Black", "White")
    )
)


def table4_and_12_gender_by_location(
    seed: int = DEFAULT_SEED, measure: str = "exposure"
) -> ComparisonReport:
    """Tables 4 / 12: Male vs Female across locations on TaskRabbit.

    Uses the ranking-wide exposure normalization: with the paper's literal
    comparables-only shares, Male and Female — being mutually comparable
    and jointly exhaustive — provably receive identical deviations in every
    cell, which contradicts the published (unequal) numbers.
    """
    dataset = build_taskrabbit_dataset(seed=seed, level="category")
    fbox = FBox.for_marketplace(
        dataset, default_schema(), measure=measure, exposure_denominator="ranking"
    )
    return fbox.compare("group", MALE, FEMALE, "location")


def table13_14_jobs_by_ethnicity(
    measure: str, seed: int = DEFAULT_SEED
) -> ComparisonReport:
    """Tables 13 (EMD) / 14 (Exposure): Lawn Mowing vs Event Decorating
    broken down by group; the ethnicity rows are the paper's subjects."""
    dataset = build_taskrabbit_dataset(
        seed=seed, level="job", jobs=("Lawn Mowing", "Event Decorating")
    )
    fbox = FBox.for_marketplace(
        dataset, default_schema(), measure=measure, groups=_COMPARISON_GROUPS
    )
    return fbox.compare("query", "Lawn Mowing", "Event Decorating", "group")


def table15_locations_by_subjob(seed: int = DEFAULT_SEED) -> ComparisonReport:
    """Table 15: SF Bay Area vs Chicago across General Cleaning sub-jobs (EMD)."""
    dataset = build_taskrabbit_dataset(
        seed=seed,
        level="job",
        jobs=tuple(JOBS_BY_CATEGORY["General Cleaning"]),
        cities=("San Francisco Bay Area, CA", "Chicago, IL"),
    )
    fbox = FBox.for_marketplace(dataset, default_schema(), measure="emd")
    return fbox.compare(
        "location", "San Francisco Bay Area, CA", "Chicago, IL", "query"
    )


def table16_17_gender_by_location(
    measure: str, seed: int = DEFAULT_SEED, profile_level: bool = True
) -> ComparisonReport:
    """Tables 16 (Kendall) / 17 (Jaccard): gender comparison by location.

    With ``profile_level=True`` (default) the comparison runs White Male vs
    White Female — full profiles whose comparable groups differ, so the
    asymmetry the paper reports is well-defined; ``False`` runs the literal
    marginal Male vs Female, which is provably tied cell-by-cell under any
    pairwise DIST (documented in EXPERIMENTS.md).
    """
    dataset = build_google_dataset(seed=seed, design="full")
    fbox = FBox.for_search(
        dataset, default_schema(), measure=measure, groups=_COMPARISON_GROUPS
    )
    if profile_level:
        r1 = Group({"gender": "Male", "ethnicity": "White"})
        r2 = Group({"gender": "Female", "ethnicity": "White"})
    else:
        r1, r2 = MALE, FEMALE
    return fbox.compare("group", r1, r2, "location")


def table18_19_queries_by_ethnicity(
    measure: str, seed: int = DEFAULT_SEED
) -> ComparisonReport:
    """Tables 18 (Kendall) / 19 (Jaccard): Running Errands vs General
    Cleaning broken down by group; ethnicity rows are the subjects.

    The comparison runs at the query-category level by averaging each
    category's five term variants: the cube's queries are terms, so the
    driver compares the canonical terms ("run errand jobs" vs "general
    cleaning jobs") whose divergence carries the category calibration.
    """
    dataset = build_google_dataset(seed=seed, design="full")
    fbox = FBox.for_search(
        dataset, default_schema(), measure=measure, groups=_COMPARISON_GROUPS
    )
    return fbox.compare(
        "query", term_variants("run errand")[0], term_variants("general cleaning")[0], "group"
    )


def table20_21_locations_by_term(
    measure: str, seed: int = DEFAULT_SEED
) -> ComparisonReport:
    """Tables 20 (Kendall) / 21 (Jaccard): Boston vs Bristol across the
    General Cleaning search-term variants."""
    dataset = build_google_dataset(seed=seed, design="full")
    fbox = FBox.for_search(
        dataset,
        default_schema(),
        measure=measure,
        queries=term_variants("general cleaning"),
    )
    return fbox.compare("location", "Boston, MA", "Bristol, UK", "query")
