"""Cross-site hypothesis generation and verification.

The paper's conclusion describes the framework's intended workflow: *use
quantification on one site to generate hypotheses, then verify them on
another* (as the authors did from TaskRabbit to Google job search), in
iterative exploratory scenarios.  This module gives that workflow a small
API:

* :func:`generate` — turn one F-Box's quantification results into ordered
  :class:`Hypothesis` objects ("X is treated less fairly than Y along
  dimension D").
* :func:`verify` — test a hypothesis against another F-Box, translating
  dimension members between sites if needed (e.g. the TaskRabbit job
  category "Yard Work" to the Google query term set).

Used by ``examples/hypothesis_transfer.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from ..core.fbox import FBox
from ..exceptions import AlgorithmError

__all__ = ["Hypothesis", "Verification", "generate", "verify"]


@dataclass(frozen=True)
class Hypothesis:
    """An ordered fairness claim: ``worse`` is treated less fairly than ``better``."""

    dimension: str
    worse: Hashable
    better: Hashable
    margin: float
    source: str = ""

    def __str__(self) -> str:
        return (
            f"[{self.source or 'hypothesis'}] {self.worse} is treated less "
            f"fairly than {self.better} (dimension: {self.dimension}, "
            f"margin {self.margin:.3f})"
        )


@dataclass(frozen=True)
class Verification:
    """The outcome of testing a hypothesis on another site."""

    hypothesis: Hypothesis
    confirmed: bool
    worse_value: float
    better_value: float
    target: str = ""

    def __str__(self) -> str:
        verdict = "CONFIRMED" if self.confirmed else "REJECTED"
        return (
            f"{verdict} on {self.target or 'target'}: "
            f"{self.hypothesis.worse}={self.worse_value:.3f} vs "
            f"{self.hypothesis.better}={self.better_value:.3f}"
        )


def generate(
    fbox: FBox, dimension: str, top: int = 3, source: str = ""
) -> list[Hypothesis]:
    """Hypotheses from one site's quantification: extremes vs extremes.

    Pairs the ``top`` most unfair members of ``dimension`` with the ``top``
    fairest, most-extreme pairs first.
    """
    if top <= 0:
        raise AlgorithmError(f"top must be positive, got {top}")
    most = fbox.quantify(dimension, k=top, order="most")
    least = fbox.quantify(dimension, k=top, order="least")
    hypotheses = []
    for (worse, worse_value), (better, better_value) in zip(
        most.entries, least.entries
    ):
        if worse == better or worse_value <= better_value:
            # Overlapping extremes on small domains produce degenerate or
            # inverted pairs; only keep claims the source data supports.
            continue
        hypotheses.append(
            Hypothesis(
                dimension=dimension,
                worse=worse,
                better=better,
                margin=worse_value - better_value,
                source=source,
            )
        )
    return hypotheses


def verify(
    hypothesis: Hypothesis,
    fbox: FBox,
    translate: Callable[[Hashable], Sequence | Hashable] | None = None,
    target: str = "",
) -> Verification:
    """Test a hypothesis against another site's F-Box.

    ``translate`` maps a source-site dimension member onto the target
    site's vocabulary — either a single member or a collection to be
    aggregated (e.g. a query category onto its five search-term variants).
    Raises :class:`CubeError` when a translated member has no defined
    unfairness on the target.
    """

    def value_of(member: Hashable) -> float:
        translated = translate(member) if translate is not None else member
        if isinstance(translated, (list, tuple, set, frozenset)):
            selection = {f"{hypothesis.dimension}s": list(translated)}
        else:
            selection = {f"{hypothesis.dimension}s": [translated]}
        if hypothesis.dimension == "query":
            selection = {"queries": selection.pop(f"{hypothesis.dimension}s")}
        return fbox.aggregate(**selection)

    worse_value = value_of(hypothesis.worse)
    better_value = value_of(hypothesis.better)
    return Verification(
        hypothesis=hypothesis,
        confirmed=worse_value > better_value,
        worse_value=worse_value,
        better_value=better_value,
        target=target,
    )
