"""End-to-end construction of the two case-study datasets.

These are the entry points the examples, tests, and benchmarks share: one
call produces the crawled TaskRabbit dataset or the Google user-study
dataset exactly as the paper's pipelines (Figures 6 and 9) would, from a
single seed.  Results are memoized per (seed, configuration) within the
process because several benchmarks reuse the same dataset.
"""

from __future__ import annotations

from functools import lru_cache

from ..data.schema import MarketplaceDataset, SearchDataset
from ..marketplace.crawl import run_crawl
from ..marketplace.site import TaskRabbitSite
from ..searchengine.engine import GoogleJobsEngine
from ..searchengine.study import full_design, paper_design, run_study

__all__ = [
    "DEFAULT_SEED",
    "build_taskrabbit_site",
    "build_taskrabbit_dataset",
    "build_google_dataset",
]

DEFAULT_SEED = 7
"""Seed used throughout the reproduction (EXPERIMENTS.md records it)."""


@lru_cache(maxsize=8)
def build_taskrabbit_site(seed: int = DEFAULT_SEED, bias_scale: float = 1.0) -> TaskRabbitSite:
    """The simulated marketplace (population + scoring model)."""
    return TaskRabbitSite(seed=seed, bias_scale=bias_scale)


@lru_cache(maxsize=8)
def build_taskrabbit_dataset(
    seed: int = DEFAULT_SEED,
    level: str = "category",
    jobs: tuple[str, ...] | None = None,
    cities: tuple[str, ...] | None = None,
    bias_scale: float = 1.0,
    label_error_rate: float = 0.0,
) -> MarketplaceDataset:
    """Crawl the simulated TaskRabbit and return the dataset.

    ``level="category"`` (448 queries) suits quick analyses; the paper's
    full 5,361-query crawl is ``level="job"``.  ``jobs``/``cities`` narrow
    the crawl scope (tuples, for memoization).
    """
    site = build_taskrabbit_site(seed, bias_scale)
    report = run_crawl(
        site,
        level=level,
        jobs=list(jobs) if jobs is not None else None,
        cities=list(cities) if cities is not None else None,
        label_error_rate=label_error_rate,
    )
    return report.dataset


@lru_cache(maxsize=8)
def build_google_dataset(
    seed: int = DEFAULT_SEED,
    design: str = "full",
    personalization_scale: float = 1.0,
) -> SearchDataset:
    """Run the Google user study and return the dataset.

    ``design="paper"`` reproduces Table 7's sparse 60-study layout;
    ``design="full"`` (default) covers every query at every location, which
    the quantification experiments need (see EXPERIMENTS.md on the paper's
    design inconsistency).
    """
    engine = GoogleJobsEngine(seed=seed, personalization_scale=personalization_scale)
    chosen = paper_design() if design == "paper" else full_design()
    return run_study(engine, chosen).dataset
