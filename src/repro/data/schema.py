"""Record types for observed rankings on both kinds of sites.

These are the framework's raw inputs: what a crawler or user study actually
observes.  A marketplace crawl yields, per ``(query, location)``, one ranked
list of workers whose demographics are known (after labeling).  A search-
engine study yields, per ``(query, location)``, one ranked result list *per
participating user*, with the users' demographics known from recruitment.

Datasets bundle observations with the people behind them and offer the
group-membership lookups every unfairness measure needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.groups import Group
from ..core.rankings import RankedList
from ..exceptions import DataError

__all__ = [
    "WorkerProfile",
    "SearchUser",
    "MarketplaceObservation",
    "SearchObservation",
    "MarketplaceDataset",
    "SearchDataset",
]


@dataclass(frozen=True)
class WorkerProfile:
    """A marketplace worker with labeled protected attributes.

    ``attributes`` holds the protected profile (e.g. gender/ethnicity from
    the AMT labeling step); ``features`` holds public marketplace signals
    (rating, completed jobs, hourly rate, …) used by scoring models;
    ``offerings`` lists the job types and categories the worker serves —
    an empty set means the worker offers everything.
    """

    worker_id: str
    attributes: Mapping[str, str]
    features: Mapping[str, float] = field(default_factory=dict)
    offerings: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.worker_id:
            raise DataError("worker_id must be non-empty")
        object.__setattr__(self, "attributes", dict(self.attributes))
        object.__setattr__(self, "features", dict(self.features))
        object.__setattr__(self, "offerings", frozenset(self.offerings))

    def offers(self, job: str) -> bool:
        """True when the worker serves ``job`` (a job type or category name)."""
        return not self.offerings or job in self.offerings


@dataclass(frozen=True)
class SearchUser:
    """A study participant with known protected attributes."""

    user_id: str
    attributes: Mapping[str, str]

    def __post_init__(self) -> None:
        if not self.user_id:
            raise DataError("user_id must be non-empty")
        object.__setattr__(self, "attributes", dict(self.attributes))


@dataclass(frozen=True)
class MarketplaceObservation:
    """One crawled worker ranking for a ``(query, location)`` pair."""

    query: str
    location: str
    ranking: RankedList

    def __post_init__(self) -> None:
        if not self.query or not self.location:
            raise DataError("observations need a non-empty query and location")
        if len(self.ranking) == 0:
            raise DataError(
                f"empty ranking observed for {self.query!r} @ {self.location!r}"
            )


@dataclass(frozen=True)
class SearchObservation:
    """Per-user personalized result lists for a ``(query, location)`` pair."""

    query: str
    location: str
    results_by_user: Mapping[str, RankedList]

    def __post_init__(self) -> None:
        if not self.query or not self.location:
            raise DataError("observations need a non-empty query and location")
        results = dict(self.results_by_user)
        if not results:
            raise DataError(
                f"no user result lists for {self.query!r} @ {self.location!r}"
            )
        object.__setattr__(self, "results_by_user", results)


class MarketplaceDataset:
    """Workers plus their observed rankings, indexed for fast lookups."""

    def __init__(
        self,
        workers: Iterable[WorkerProfile],
        observations: Iterable[MarketplaceObservation],
    ) -> None:
        self.workers: dict[str, WorkerProfile] = {}
        for worker in workers:
            if worker.worker_id in self.workers:
                raise DataError(f"duplicate worker id {worker.worker_id!r}")
            self.workers[worker.worker_id] = worker
        self._observations: dict[tuple[str, str], MarketplaceObservation] = {}
        for observation in observations:
            key = (observation.query, observation.location)
            if key in self._observations:
                raise DataError(f"duplicate observation for {key!r}")
            for worker_id in observation.ranking:
                if worker_id not in self.workers:
                    raise DataError(
                        f"ranking for {key!r} references unknown worker {worker_id!r}"
                    )
            self._observations[key] = observation
        if not self._observations:
            raise DataError("a marketplace dataset needs at least one observation")

    @property
    def queries(self) -> list[str]:
        """Distinct queries, in first-seen order."""
        return list(dict.fromkeys(query for query, _ in self._observations))

    @property
    def locations(self) -> list[str]:
        """Distinct locations, in first-seen order."""
        return list(dict.fromkeys(location for _, location in self._observations))

    def observation(self, query: str, location: str) -> MarketplaceObservation:
        """The ranking observed for ``(query, location)``."""
        try:
            return self._observations[(query, location)]
        except KeyError:
            raise DataError(f"no observation for ({query!r}, {location!r})") from None

    def has_observation(self, query: str, location: str) -> bool:
        """True if the pair was crawled."""
        return (query, location) in self._observations

    def observations(self) -> list[MarketplaceObservation]:
        """All observations in insertion order."""
        return list(self._observations.values())

    def members_in_ranking(self, group: Group, ranking: RankedList) -> list[str]:
        """Worker ids in ``ranking`` whose profile satisfies ``group``'s label."""
        return [
            worker_id
            for worker_id in ranking
            if group.matches(self.workers[worker_id].attributes)
        ]

    def upsert_observations(
        self, observations: Iterable[MarketplaceObservation]
    ) -> list[tuple[str, str]]:
        """Replace or add ``(query, location)`` observations in place.

        The whole batch is validated before the first write, so a bad
        observation leaves the dataset untouched.  Each accepted entry is a
        single dict-item assignment of a frozen observation, which keeps the
        dataset readable by concurrent queries throughout.  Returns the
        distinct touched keys in batch order.
        """
        batch = list(observations)
        for observation in batch:
            key = (observation.query, observation.location)
            for worker_id in observation.ranking:
                if worker_id not in self.workers:
                    raise DataError(
                        f"ranking for {key!r} references unknown worker {worker_id!r}"
                    )
        touched: dict[tuple[str, str], None] = {}
        for observation in batch:
            key = (observation.query, observation.location)
            self._observations[key] = observation
            touched[key] = None
        return list(touched)

    def __len__(self) -> int:
        return len(self._observations)


class SearchDataset:
    """Study participants plus their personalized result lists."""

    def __init__(
        self,
        users: Iterable[SearchUser],
        observations: Iterable[SearchObservation],
    ) -> None:
        self.users: dict[str, SearchUser] = {}
        for user in users:
            if user.user_id in self.users:
                raise DataError(f"duplicate user id {user.user_id!r}")
            self.users[user.user_id] = user
        self._observations: dict[tuple[str, str], SearchObservation] = {}
        for observation in observations:
            key = (observation.query, observation.location)
            if key in self._observations:
                raise DataError(f"duplicate observation for {key!r}")
            for user_id in observation.results_by_user:
                if user_id not in self.users:
                    raise DataError(
                        f"observation for {key!r} references unknown user {user_id!r}"
                    )
            self._observations[key] = observation
        if not self._observations:
            raise DataError("a search dataset needs at least one observation")

    @property
    def queries(self) -> list[str]:
        """Distinct queries, in first-seen order."""
        return list(dict.fromkeys(query for query, _ in self._observations))

    @property
    def locations(self) -> list[str]:
        """Distinct locations, in first-seen order."""
        return list(dict.fromkeys(location for _, location in self._observations))

    def observation(self, query: str, location: str) -> SearchObservation:
        """The per-user results observed for ``(query, location)``."""
        try:
            return self._observations[(query, location)]
        except KeyError:
            raise DataError(f"no observation for ({query!r}, {location!r})") from None

    def has_observation(self, query: str, location: str) -> bool:
        """True if the pair was studied."""
        return (query, location) in self._observations

    def observations(self) -> list[SearchObservation]:
        """All observations in insertion order."""
        return list(self._observations.values())

    def members_in_observation(
        self, group: Group, observation: SearchObservation
    ) -> list[str]:
        """User ids with result lists whose profile satisfies ``group``."""
        return [
            user_id
            for user_id in observation.results_by_user
            if group.matches(self.users[user_id].attributes)
        ]

    def upsert_observations(
        self, observations: Iterable[SearchObservation]
    ) -> list[tuple[str, str]]:
        """Replace or add ``(query, location)`` observations in place.

        Validated before the first write so a bad batch leaves the dataset
        untouched; applied as atomic dict-item assignments of frozen
        observations.  Returns the distinct touched keys in batch order.
        """
        batch = list(observations)
        for observation in batch:
            key = (observation.query, observation.location)
            for user_id in observation.results_by_user:
                if user_id not in self.users:
                    raise DataError(
                        f"observation for {key!r} references unknown user {user_id!r}"
                    )
        touched: dict[tuple[str, str], None] = {}
        for observation in batch:
            key = (observation.query, observation.location)
            self._observations[key] = observation
            touched[key] = None
        return list(touched)

    def __len__(self) -> int:
        return len(self._observations)
