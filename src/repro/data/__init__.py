"""Observation record types, persistence, and dataset builders."""

from .schema import (
    MarketplaceDataset,
    MarketplaceObservation,
    SearchDataset,
    SearchObservation,
    SearchUser,
    WorkerProfile,
)

__all__ = [
    "MarketplaceDataset",
    "MarketplaceObservation",
    "SearchDataset",
    "SearchObservation",
    "SearchUser",
    "WorkerProfile",
]
