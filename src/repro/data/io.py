"""JSONL persistence for crawled datasets.

The paper's pipeline crawls once and analyzes many times; these helpers
round-trip both dataset kinds through line-delimited JSON so a crawl (or a
user study) can be saved to disk and reloaded without re-simulation.  The
format is one JSON object per line with a ``kind`` tag, so a single file
holds workers/users and observations together and is trivially greppable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from ..core.rankings import RankedList
from ..exceptions import DataError
from .schema import (
    MarketplaceDataset,
    MarketplaceObservation,
    SearchDataset,
    SearchObservation,
    SearchUser,
    WorkerProfile,
)

__all__ = [
    "save_marketplace_dataset",
    "load_marketplace_dataset",
    "save_search_dataset",
    "load_search_dataset",
]


def _ranked_list_payload(ranking: RankedList) -> dict:
    payload: dict = {"items": list(ranking.items)}
    if ranking.scores is not None:
        payload["scores"] = dict(ranking.scores)
    return payload


def _ranked_list_from(payload: dict) -> RankedList:
    return RankedList(payload["items"], payload.get("scores"))


def _write_lines(path: Path, records: Iterator[dict]) -> None:
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def _read_lines(path: Path) -> Iterator[dict]:
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as error:
                raise DataError(f"{path}:{line_number}: invalid JSON ({error})") from None


def save_marketplace_dataset(dataset: MarketplaceDataset, path: str | Path) -> None:
    """Write a marketplace dataset as JSONL (workers first, then rankings)."""
    path = Path(path)

    def records() -> Iterator[dict]:
        for worker in dataset.workers.values():
            yield {
                "kind": "worker",
                "worker_id": worker.worker_id,
                "attributes": dict(worker.attributes),
                "features": dict(worker.features),
                "offerings": sorted(worker.offerings),
            }
        for observation in dataset.observations():
            yield {
                "kind": "observation",
                "query": observation.query,
                "location": observation.location,
                "ranking": _ranked_list_payload(observation.ranking),
            }

    _write_lines(path, records())


def load_marketplace_dataset(path: str | Path) -> MarketplaceDataset:
    """Read a marketplace dataset saved by :func:`save_marketplace_dataset`."""
    workers: list[WorkerProfile] = []
    observations: list[MarketplaceObservation] = []
    for record in _read_lines(Path(path)):
        kind = record.get("kind")
        if kind == "worker":
            workers.append(
                WorkerProfile(
                    worker_id=record["worker_id"],
                    attributes=record["attributes"],
                    features=record.get("features", {}),
                    offerings=frozenset(record.get("offerings", ())),
                )
            )
        elif kind == "observation":
            observations.append(
                MarketplaceObservation(
                    query=record["query"],
                    location=record["location"],
                    ranking=_ranked_list_from(record["ranking"]),
                )
            )
        else:
            raise DataError(f"unknown record kind {kind!r} in {path}")
    return MarketplaceDataset(workers=workers, observations=observations)


def save_search_dataset(dataset: SearchDataset, path: str | Path) -> None:
    """Write a search dataset as JSONL (users first, then observations)."""
    path = Path(path)

    def records() -> Iterator[dict]:
        for user in dataset.users.values():
            yield {
                "kind": "user",
                "user_id": user.user_id,
                "attributes": dict(user.attributes),
            }
        for observation in dataset.observations():
            yield {
                "kind": "observation",
                "query": observation.query,
                "location": observation.location,
                "results_by_user": {
                    user_id: _ranked_list_payload(ranking)
                    for user_id, ranking in observation.results_by_user.items()
                },
            }

    _write_lines(path, records())


def load_search_dataset(path: str | Path) -> SearchDataset:
    """Read a search dataset saved by :func:`save_search_dataset`."""
    users: list[SearchUser] = []
    observations: list[SearchObservation] = []
    for record in _read_lines(Path(path)):
        kind = record.get("kind")
        if kind == "user":
            users.append(
                SearchUser(user_id=record["user_id"], attributes=record["attributes"])
            )
        elif kind == "observation":
            observations.append(
                SearchObservation(
                    query=record["query"],
                    location=record["location"],
                    results_by_user={
                        user_id: _ranked_list_from(payload)
                        for user_id, payload in record["results_by_user"].items()
                    },
                )
            )
        else:
            raise DataError(f"unknown record kind {kind!r} in {path}")
    return SearchDataset(users=users, observations=observations)
