"""Equivalent-search-term generation (the paper's Keyword Planner step).

The paper fed each TaskRabbit query into Google Keyword Planner, shortlisted
50 related formulations, and manually picked the 5 whose results matched the
original term (Table 6).  This module reproduces that interface: for every
canonical query it returns five deterministic term variants, phrased like
the paper's samples ("run errand jobs near London UK", "errand runner jobs
near London, UK", …).

Two variants that the comparison experiments name explicitly — "office
cleaning jobs" and "private cleaning jobs" for *general cleaning* (paper
Tables 20–21) — are pinned verbatim.
"""

from __future__ import annotations

from ..exceptions import DataError
from .jobs import GOOGLE_QUERIES

__all__ = ["TERMS_PER_QUERY", "term_variants", "canonical_query_of"]

TERMS_PER_QUERY = 5
"""The paper shortlisted five equivalent search terms per query."""

_TERM_PATTERNS: dict[str, tuple[str, ...]] = {
    "yard work": (
        "yard work jobs",
        "yard worker needed",
        "lawn work needed",
        "yard help needed",
        "yard work help wanted",
    ),
    "general cleaning": (
        "general cleaning jobs",
        "office cleaning jobs",
        "private cleaning jobs",
        "house cleaning help wanted",
        "cleaning service jobs",
    ),
    "event staffing": (
        "event staffing jobs",
        "event staff needed",
        "event helper jobs",
        "party staff wanted",
        "event crew jobs",
    ),
    "moving job": (
        "moving job openings",
        "moving helper jobs",
        "mover needed",
        "moving crew jobs",
        "furniture moving help wanted",
    ),
    "run errand": (
        "run errand jobs",
        "errand service jobs",
        "errand runner jobs",
        "errands and odd jobs",
        "jobs running errands for seniors",
    ),
    "furniture assembly": (
        "furniture assembly jobs",
        "furniture assembler needed",
        "flat pack assembly jobs",
        "ikea assembly help wanted",
        "assembly technician jobs",
    ),
}

_CANONICAL_BY_TERM: dict[str, str] = {
    term: query for query, terms in _TERM_PATTERNS.items() for term in terms
}


def term_variants(query: str) -> list[str]:
    """The five equivalent search terms for a canonical query."""
    if query not in GOOGLE_QUERIES:
        raise DataError(f"unknown Google query {query!r}")
    return list(_TERM_PATTERNS[query])


def canonical_query_of(term: str) -> str:
    """Map a search term back to its canonical query."""
    if term in _TERM_PATTERNS:
        return term
    try:
        return _CANONICAL_BY_TERM[term]
    except KeyError:
        raise DataError(f"unknown search term {term!r}") from None
