"""The Google-side user study: designs, execution, dataset assembly.

Two study designs are provided:

* :func:`paper_design` — the paper's Table 7: five query categories over
  ten locations with the stated multiplicities (yard work at four
  locations, general cleaning at three, one each for the rest), 60 studies
  in total (6 demographic groups × 10 locations).
* :func:`full_design` — every query category at every study location.  The
  paper's §5.2.2 reports findings (Washington DC fairest, furniture
  assembly fairest query) that its Table 7 design cannot produce, so the
  quantification and comparison experiments run on this dense design.

:func:`run_study` recruits participants per study, drives each through the
Chrome-extension protocol, and assembles a
:class:`~repro.data.schema.SearchDataset` whose *queries* are the concrete
search terms (Tables 20–21 break down by term; category-level results
aggregate over each query's five terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Iterator

from ..data.schema import SearchDataset, SearchObservation, SearchUser
from ..exceptions import DataError
from .engine import GoogleJobsEngine
from .extension import ChromeExtension, ExtensionConfig
from .jobs import GOOGLE_LOCATIONS, GOOGLE_QUERIES
from .keyword_planner import term_variants
from .personas import PARTICIPANTS_PER_STUDY, recruit_all

__all__ = [
    "StudyDesign",
    "StudyReport",
    "emit_observations",
    "full_design",
    "paper_design",
    "run_study",
]


@dataclass(frozen=True)
class StudyDesign:
    """Which (query category, location) pairs the study covers."""

    pairs: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        for query, location in self.pairs:
            if query not in GOOGLE_QUERIES:
                raise DataError(f"unknown query {query!r} in study design")
            if location not in GOOGLE_LOCATIONS:
                raise DataError(f"unknown location {location!r} in study design")

    @property
    def locations(self) -> list[str]:
        """Distinct locations, in first-appearance order."""
        return list(dict.fromkeys(location for _, location in self.pairs))

    @property
    def queries(self) -> list[str]:
        """Distinct query categories, in first-appearance order."""
        return list(dict.fromkeys(query for query, _ in self.pairs))

    def locations_per_query(self) -> dict[str, int]:
        """Table 7: number of locations each query category covers."""
        counts: dict[str, int] = {}
        for query, _ in self.pairs:
            counts[query] = counts.get(query, 0) + 1
        return counts


def paper_design() -> StudyDesign:
    """The Table 7 design: 10 (query, location) pairs over 10 locations."""
    return StudyDesign(
        pairs=(
            ("yard work", "New York City, NY"),
            ("yard work", "San Diego, CA"),
            ("yard work", "Pittsburgh, PA"),
            ("yard work", "Detroit, MI"),
            ("general cleaning", "Boston, MA"),
            ("general cleaning", "Bristol, UK"),
            ("general cleaning", "Manchester, UK"),
            ("event staffing", "Birmingham, UK"),
            ("moving job", "Charlotte, NC"),
            ("run errand", "London, UK"),
        )
    )


def full_design() -> StudyDesign:
    """Every query category at every study location (dense cube)."""
    return StudyDesign(
        pairs=tuple(
            (query, location)
            for query in GOOGLE_QUERIES
            for location in GOOGLE_LOCATIONS
        )
    )


@dataclass(frozen=True)
class StudyReport:
    """A finished study: the dataset plus protocol statistics."""

    dataset: SearchDataset
    studies: int
    participants: int
    searches_executed: int


def run_study(
    engine: GoogleJobsEngine,
    design: StudyDesign | None = None,
    extension_config: ExtensionConfig | None = None,
    participants_per_study: int = PARTICIPANTS_PER_STUDY,
) -> StudyReport:
    """Execute a study design end-to-end and assemble the dataset.

    Every participant recruited for a location runs the term variants of
    every query category studied at that location, through the extension's
    noise-control protocol.  Observations are recorded per (term, location).
    """
    design = design if design is not None else paper_design()
    extension = ChromeExtension(engine, extension_config)

    participants = recruit_all(design.locations, count=participants_per_study)
    by_location: dict[str, list] = {}
    for participant in participants:
        by_location.setdefault(participant.location, []).append(participant)

    users: list[SearchUser] = [participant.user for participant in participants]
    results: dict[tuple[str, str], dict[str, list]] = {}
    searches = 0
    for query, location in design.pairs:
        terms = term_variants(query)
        for participant in by_location[location]:
            pages = extension.run_terms(participant.user, terms, location)
            searches += len(pages)
            for term, page in pages.items():
                results.setdefault((term, location), {})[participant.user_id] = page

    observations = [
        SearchObservation(query=term, location=location, results_by_user=pages)
        for (term, location), pages in results.items()
    ]
    dataset = SearchDataset(users=users, observations=observations)
    study_count = len(design.locations) * 6  # six demographic groups
    return StudyReport(
        dataset=dataset,
        studies=study_count,
        participants=len(participants),
        searches_executed=searches,
    )


def emit_observations(
    dataset: SearchDataset,
    batches: int = 1,
    batch_size: int = 4,
    seed: int = 0,
    swaps: int = 2,
) -> Iterator[list[dict]]:
    """Stream follow-up study waves shaped for ``POST /v1/observations``.

    Each batch revisits a rotating window of ``batch_size`` of the
    dataset's (term, location) observations with the *same* participant
    panel and applies ``swaps`` seeded adjacent transpositions to every
    user's result page — the result drift a repeated study would record.
    Yields plain JSON batches, ready for
    :meth:`repro.client.FBoxClient.ingest`.
    """
    observations = dataset.observations()
    if not observations:
        raise DataError("dataset has no observations to stream against")
    rng = Random(seed)
    cursor = 0
    for _ in range(batches):
        batch = []
        for _ in range(min(batch_size, len(observations))):
            observation = observations[cursor % len(observations)]
            cursor += 1
            pages = {
                user_id: _perturb(list(page.items), rng, swaps)
                for user_id, page in sorted(
                    observation.results_by_user.items()
                )
            }
            batch.append(
                {
                    "query": observation.query,
                    "location": observation.location,
                    "results_by_user": pages,
                }
            )
        yield batch


def _perturb(items: list[str], rng: Random, swaps: int) -> list[str]:
    """A mild result drift: ``swaps`` random adjacent transpositions."""
    items = list(items)
    for _ in range(swaps if len(items) > 1 else 0):
        position = rng.randrange(len(items) - 1)
        items[position], items[position + 1] = items[position + 1], items[position]
    return items
