"""Prolific-style participant recruitment for the Google study.

Each *study* recruits participants of one demographic group at one location
(the paper ran 60 studies — six gender×ethnicity groups across ten
locations — with an average of three participants each).  A participant is
a :class:`~repro.data.schema.SearchUser` plus a browsing-profile seed: the
profile is what the engine personalizes on, and it correlates perfectly
with the participant's group by construction (the paper's premise is that
search/browsing history *can* correlate with demographics; the simulator
makes that correlation explicit and tunable).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.attributes import ETHNICITIES, GENDERS
from ..data.schema import SearchUser
from ..exceptions import DataError
from .jobs import GOOGLE_LOCATIONS

__all__ = ["PARTICIPANTS_PER_STUDY", "Participant", "recruit", "recruit_all"]

PARTICIPANTS_PER_STUDY = 3
"""Average participants per study on Prolific Academic."""


@dataclass(frozen=True)
class Participant:
    """One recruited participant: a search user pinned to a study location."""

    user: SearchUser
    location: str
    profile_seed: int

    @property
    def user_id(self) -> str:
        """Shortcut to the underlying user id."""
        return self.user.user_id


def _slug(text: str) -> str:
    return text.lower().replace(",", "").replace(" ", "-")


def recruit(
    gender: str, ethnicity: str, location: str, count: int = PARTICIPANTS_PER_STUDY
) -> list[Participant]:
    """Recruit ``count`` participants of one group for one location study."""
    if gender not in GENDERS:
        raise DataError(f"unknown gender {gender!r}")
    if ethnicity not in ETHNICITIES:
        raise DataError(f"unknown ethnicity {ethnicity!r}")
    if location not in GOOGLE_LOCATIONS:
        raise DataError(f"unknown study location {location!r}")
    if count < 1:
        raise DataError(f"a study needs at least one participant, got {count}")
    participants = []
    for index in range(count):
        user_id = f"p-{_slug(location)}-{ethnicity.lower()}-{gender.lower()}-{index}"
        user = SearchUser(
            user_id=user_id, attributes={"gender": gender, "ethnicity": ethnicity}
        )
        participants.append(
            Participant(user=user, location=location, profile_seed=index)
        )
    return participants


def recruit_all(
    locations: list[str] | None = None, count: int = PARTICIPANTS_PER_STUDY
) -> list[Participant]:
    """Recruit every (group, location) study's participants."""
    chosen = list(locations) if locations is not None else list(GOOGLE_LOCATIONS)
    participants: list[Participant] = []
    for location in chosen:
        for gender in GENDERS:
            for ethnicity in ETHNICITIES:
                participants.extend(recruit(gender, ethnicity, location, count))
    return participants
