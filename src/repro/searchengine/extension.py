"""The Chrome-extension protocol: executing terms under noise control.

The paper's extension runs each of the five search terms every 12 minutes
(defeating the carry-over effect), executes every term at least twice
(detecting A/B buckets), fixes the browser location and routes through a
proxy (defeating geolocation noise), all from one place (limiting
infrastructure noise).  :class:`ChromeExtension` implements exactly that
protocol against the simulated engine, and every mitigation can be turned
off for the noise-ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.rankings import RankedList
from ..data.schema import SearchUser
from .engine import ExecutionContext, GoogleJobsEngine

__all__ = ["ExtensionConfig", "ChromeExtension", "TERM_SPACING_MINUTES"]

TERM_SPACING_MINUTES = 12.0
"""The paper's extension spaces term executions 12 minutes apart."""


@dataclass(frozen=True)
class ExtensionConfig:
    """Which of the paper's noise mitigations are active."""

    spacing_minutes: float = TERM_SPACING_MINUTES
    repeats: int = 2
    max_repeats: int = 4
    use_proxy: bool = True

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("the extension must execute each term at least once")
        if self.max_repeats < self.repeats:
            raise ValueError("max_repeats must be at least repeats")


class ChromeExtension:
    """Runs a participant's search terms with the paper's noise controls.

    Parameters
    ----------
    engine:
        The (simulated) search engine to query.
    config:
        Mitigation settings; the default reproduces the paper's protocol.
    home_location:
        Where un-proxied requests originate (only matters when
        ``use_proxy=False``, for the ablation).
    """

    def __init__(
        self,
        engine: GoogleJobsEngine,
        config: ExtensionConfig | None = None,
        home_location: str | None = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ExtensionConfig()
        self.home_location = home_location

    def _origin(self, location: str) -> str | None:
        if self.config.use_proxy:
            return location
        return self.home_location

    def run_term(
        self,
        user: SearchUser,
        term: str,
        location: str,
        start_minute: float = 0.0,
        history: tuple[tuple[float, str], ...] = (),
    ) -> tuple[RankedList, float, int]:
        """Execute one term with repeats; return (result, end_minute, runs).

        The term is executed ``repeats`` times.  If any two executions
        agree exactly, that page is taken as the stable result (an A/B
        bucket shows up as a disagreeing run); otherwise execution continues
        up to ``max_repeats`` and the final run wins.
        """
        minute = start_minute
        seen: dict[tuple[str, ...], int] = {}
        result: RankedList | None = None
        runs = 0
        for execution in range(self.config.max_repeats):
            context = ExecutionContext(
                minute=minute,
                origin=self._origin(location),
                execution=execution,
                history=history,
            )
            page = self.engine.search(user, term, location, context)
            runs += 1
            minute += self.config.spacing_minutes
            key = tuple(page.items)
            seen[key] = seen.get(key, 0) + 1
            if seen[key] >= 2 or self.config.repeats == 1:
                result = page
                break
            result = page
            if runs >= self.config.repeats and len(seen) == 1:
                break
        assert result is not None  # max_repeats >= 1 guarantees a page
        return result, minute, runs

    def run_terms(
        self, user: SearchUser, terms: list[str], location: str
    ) -> dict[str, RankedList]:
        """Run a full term list for one participant, spaced per config."""
        minute = 0.0
        history: list[tuple[float, str]] = []
        results: dict[str, RankedList] = {}
        for term in terms:
            page, minute, _ = self.run_term(
                user, term, location, start_minute=minute, history=tuple(history)
            )
            history.append((minute - self.config.spacing_minutes, term))
            results[term] = page
        return results
