"""The personalized search engine with controllable noise sources.

:class:`GoogleJobsEngine` maps (user, search term, location) to a ranked
result page.  Personalization perturbs the base ranking by an amount —
the *divergence* — that depends on the user's browsing profile, which by
construction correlates with their demographic group (the paper's premise),
and on the calibrated per-location / per-query strengths from
:mod:`repro.calibration`.

On top of personalization sit the four noise sources Hannák et al. [12]
identify and the paper controls for; each can be toggled via
:class:`NoiseConfig` for the noise-ablation benchmarks:

* **carry-over effect** — a search executed shortly after another by the
  same user is contaminated by the earlier one;
* **A/B testing** — any execution may land in an experimental bucket with
  visibly different results;
* **geolocation** — results depend on where the request originates, not
  just the query's target location (controlled by the proxy);
* **distributed infrastructure** — different datacenters serve slightly
  different corpora.

The engine is stateless and fully deterministic given the seed and the
execution context (time, origin, datacenter, history), so the extension
protocol's mitigations are observable and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..calibration import (
    GOOGLE_FEMALE_FAIRER_LOCATIONS,
    GOOGLE_GROUP_DIVERGENCE,
    GOOGLE_LOCATION_DIVERGENCE,
    GOOGLE_LOCATION_SUBQUERY_OVERRIDES,
    GOOGLE_QUERY_DIVERGENCE,
    GOOGLE_QUERY_ETHNICITY_OVERRIDES,
    profile_key,
)
from ..core.rankings import RankedList
from ..data.schema import SearchUser
from ..exceptions import DataError
from ..stats.rng import derive
from .jobs import base_ranking, posting_pool
from .keyword_planner import canonical_query_of

__all__ = ["NoiseConfig", "GoogleJobsEngine", "CARRY_OVER_WINDOW_MINUTES"]

CARRY_OVER_WINDOW_MINUTES = 10.0
"""Searches closer together than this contaminate each other."""

#: Maximum personalization operations (swaps/substitutions) on one page.
_MAX_PERSONALIZATION_OPS = 22

#: Perturbation budget of each noise source when it fires.
_AB_OPS = 9
_GEO_OPS = 6
_INFRA_OPS = 2
_CARRY_OVER_ITEMS = 3


@dataclass(frozen=True)
class NoiseConfig:
    """Which noise sources are active and how strong they are."""

    carry_over: bool = True
    ab_testing: bool = True
    geolocation: bool = True
    infrastructure: bool = True
    ab_probability: float = 0.15
    datacenters: int = 3


@dataclass(frozen=True)
class ExecutionContext:
    """One concrete query execution as the extension performs it.

    ``minute`` is the simulated wall-clock; ``origin`` is where the request
    comes from (the proxy pins this to the query's target location);
    ``execution`` numbers repeated runs of the same term; ``history`` holds
    the user's recent ``(minute, term)`` searches for carry-over.
    """

    minute: float = 0.0
    origin: str | None = None
    execution: int = 0
    history: tuple[tuple[float, str], ...] = field(default_factory=tuple)


class GoogleJobsEngine:
    """Deterministic personalized job-search engine.

    Parameters
    ----------
    seed:
        Root seed for all personalization and noise draws.
    noise:
        Active noise sources (all on by default, like the real site).
    personalization_scale:
        Multiplier on every divergence; ``0.0`` disables personalization
        entirely (the unbiased-engine ablation).
    """

    def __init__(
        self,
        seed: int = 7,
        noise: NoiseConfig | None = None,
        personalization_scale: float = 1.0,
    ) -> None:
        self.seed = seed
        self.noise = noise if noise is not None else NoiseConfig()
        self.personalization_scale = personalization_scale

    # ------------------------------------------------------------------
    # Divergence model (calibrated)
    # ------------------------------------------------------------------

    def divergence(self, user: SearchUser, term: str, location: str) -> float:
        """How far this user's results drift from the base ranking, in [0, 1.5].

        The product of the profile, location, and query strengths plus the
        interaction overrides of Tables 18–21.  In the Table 16–17 reversal
        cities the two genders' profile strengths are swapped within each
        ethnicity, making women's results *more* stable than men's there.
        """
        gender = user.attributes.get("gender", "")
        ethnicity = user.attributes.get("ethnicity", "")
        if location in GOOGLE_FEMALE_FAIRER_LOCATIONS and gender in ("Male", "Female"):
            gender = "Female" if gender == "Male" else "Male"
        profile = profile_key(gender, ethnicity)
        try:
            group_strength = GOOGLE_GROUP_DIVERGENCE[profile]
        except KeyError:
            raise DataError(f"no divergence calibration for profile {profile!r}") from None
        query = canonical_query_of(term)
        strength = (
            group_strength
            * GOOGLE_LOCATION_DIVERGENCE.get(location, 0.5)
            * GOOGLE_QUERY_DIVERGENCE.get(query, 0.5)
            * GOOGLE_QUERY_ETHNICITY_OVERRIDES.get((query, ethnicity), 1.0)
            * GOOGLE_LOCATION_SUBQUERY_OVERRIDES.get((location, term), 1.0)
            * self.personalization_scale
        )
        return float(min(strength, 1.5))

    # ------------------------------------------------------------------
    # Ranking machinery
    # ------------------------------------------------------------------

    @staticmethod
    def _perturb(
        items: list[str], pool: list[str], ops: int, rng: np.random.Generator
    ) -> list[str]:
        """Apply ``ops`` random swaps/substitutions to a result page."""
        items = list(items)
        tail = [posting for posting in pool if posting not in items]
        for _ in range(ops):
            if tail and float(rng.uniform()) < 0.35:
                # Substitute a lower-half result with an unseen posting.
                position = len(items) - 1 - int(rng.integers(len(items) // 2))
                replaced = items[position]
                incoming = tail.pop(int(rng.integers(len(tail))))
                items[position] = incoming
                tail.append(replaced)
            else:
                index = int(rng.integers(len(items) - 1))
                items[index], items[index + 1] = items[index + 1], items[index]
        return items

    def search(
        self,
        user: SearchUser,
        term: str,
        location: str,
        context: ExecutionContext | None = None,
    ) -> RankedList:
        """Execute one search and return the user's personalized page."""
        context = context if context is not None else ExecutionContext()
        query = canonical_query_of(term)
        pool = posting_pool(query, location)
        items = base_ranking(query, location)

        # Personalization: stable per (user, term, location).
        strength = self.divergence(user, term, location)
        ops = int(round(strength * _MAX_PERSONALIZATION_OPS))
        if ops > 0:
            rng = derive(self.seed, "personalize", user.user_id, term, location)
            items = self._perturb(items, pool, ops, rng)

        # Geolocation: requests not originating at the target location see
        # origin-flavored results.
        if (
            self.noise.geolocation
            and context.origin is not None
            and context.origin != location
        ):
            rng = derive(self.seed, "geo", context.origin, term, location)
            items = self._perturb(items, pool, _GEO_OPS, rng)

        # Distributed infrastructure: each execution is served by one of K
        # datacenters with a slightly different corpus view.
        if self.noise.infrastructure and self.noise.datacenters > 1:
            datacenter = int(
                derive(
                    self.seed, "dc-pick", user.user_id, term, context.execution
                ).integers(self.noise.datacenters)
            )
            if datacenter != 0:
                rng = derive(self.seed, "dc", datacenter, term, location)
                items = self._perturb(items, pool, _INFRA_OPS, rng)

        # A/B testing: an execution may land in an experimental bucket.
        if self.noise.ab_testing:
            rng = derive(self.seed, "ab", user.user_id, term, context.execution)
            if float(rng.uniform()) < self.noise.ab_probability:
                items = self._perturb(items, pool, _AB_OPS, rng)

        # Carry-over: a recent earlier search bleeds into this one.
        if self.noise.carry_over:
            recent = [
                previous_term
                for minute, previous_term in context.history
                if previous_term != term
                and 0.0 <= context.minute - minute < CARRY_OVER_WINDOW_MINUTES
            ]
            if recent:
                previous_term = recent[-1]
                previous_pool = posting_pool(
                    canonical_query_of(previous_term), location
                )
                rng = derive(self.seed, "carry", user.user_id, term, previous_term)
                kept = items[: len(items) - _CARRY_OVER_ITEMS]
                drawn = rng.choice(
                    previous_pool,
                    size=min(len(previous_pool), 2 * _CARRY_OVER_ITEMS),
                    replace=False,
                )
                carried = [posting for posting in drawn if posting not in kept]
                items = kept + carried[:_CARRY_OVER_ITEMS]
        return RankedList(items)
