"""Job-posting corpus for the simulated Google job search.

Each (canonical query, location) pair has a fixed pool of job postings.  The
*base ranking* — what a profile-less user at a pinned location sees — is the
first :data:`BASE_RESULTS` postings of that pool; the remaining tail exists
so personalization and noise can substitute results in and out, which is
what the Jaccard measure reacts to.
"""

from __future__ import annotations

from ..exceptions import DataError

__all__ = [
    "GOOGLE_QUERIES",
    "GOOGLE_LOCATIONS",
    "BASE_RESULTS",
    "POOL_SIZE",
    "posting_pool",
    "base_ranking",
]

#: The Google-side query categories.  The first five are the study
#: categories of the paper's Table 7; furniture assembly is added because
#: §5.2.2 reports it as the fairest query (one of several places where the
#: paper's §5.2.2 claims go beyond its stated Table 7 design — see
#: EXPERIMENTS.md).
GOOGLE_QUERIES: tuple[str, ...] = (
    "yard work",
    "general cleaning",
    "event staffing",
    "moving job",
    "run errand",
    "furniture assembly",
)

#: Study locations: the ten cities the paper recruited in, plus Washington,
#: DC and Los Angeles, CA — both named in §5.2.2's findings although absent
#: from the stated ten (another paper-internal inconsistency we resolve in
#: favor of covering the reported results).
GOOGLE_LOCATIONS: tuple[str, ...] = (
    "London, UK",
    "New York City, NY",
    "San Diego, CA",
    "Boston, MA",
    "Bristol, UK",
    "Charlotte, NC",
    "Pittsburgh, PA",
    "Birmingham, UK",
    "Manchester, UK",
    "Detroit, MI",
    "Washington, DC",
    "Los Angeles, CA",
)

BASE_RESULTS = 20
"""Results per page in the base ranking."""

POOL_SIZE = 32
"""Total postings available per (query, location), including the tail."""


def _slug(text: str) -> str:
    return text.lower().replace(",", "").replace(" ", "-")


def posting_pool(query: str, location: str) -> list[str]:
    """All posting identifiers for a (query, location), best-first."""
    if query not in GOOGLE_QUERIES:
        raise DataError(f"unknown Google query {query!r}")
    if location not in GOOGLE_LOCATIONS:
        raise DataError(f"unknown Google study location {location!r}")
    prefix = f"job-{_slug(query)}-{_slug(location)}"
    return [f"{prefix}-{index:02d}" for index in range(POOL_SIZE)]


def base_ranking(query: str, location: str) -> list[str]:
    """The unpersonalized result page for a (query, location)."""
    return posting_pool(query, location)[:BASE_RESULTS]
