"""Google-job-search simulator: engine, noise model, extension, user study."""

from .engine import (
    CARRY_OVER_WINDOW_MINUTES,
    ExecutionContext,
    GoogleJobsEngine,
    NoiseConfig,
)
from .extension import TERM_SPACING_MINUTES, ChromeExtension, ExtensionConfig
from .jobs import (
    BASE_RESULTS,
    GOOGLE_LOCATIONS,
    GOOGLE_QUERIES,
    POOL_SIZE,
    base_ranking,
    posting_pool,
)
from .keyword_planner import TERMS_PER_QUERY, canonical_query_of, term_variants
from .personas import PARTICIPANTS_PER_STUDY, Participant, recruit, recruit_all
from .study import StudyDesign, StudyReport, full_design, paper_design, run_study

__all__ = [
    "CARRY_OVER_WINDOW_MINUTES",
    "ExecutionContext",
    "GoogleJobsEngine",
    "NoiseConfig",
    "TERM_SPACING_MINUTES",
    "ChromeExtension",
    "ExtensionConfig",
    "BASE_RESULTS",
    "GOOGLE_LOCATIONS",
    "GOOGLE_QUERIES",
    "POOL_SIZE",
    "base_ranking",
    "posting_pool",
    "TERMS_PER_QUERY",
    "canonical_query_of",
    "term_variants",
    "PARTICIPANTS_PER_STUDY",
    "Participant",
    "recruit",
    "recruit_all",
    "StudyDesign",
    "StudyReport",
    "full_design",
    "paper_design",
    "run_study",
]
