"""The marketplace site: availability, search, and ranking.

:class:`TaskRabbitSite` glues the worker population to the scoring model and
exposes what the real site exposes — ``search(job, city)`` returning the
ranked workers *available* for the query, capped at the paper's 50 results.

Availability is stratified: for each query a fixed number of workers per
demographic profile (:data:`AVAILABILITY_QUOTA`, 50 in total) is drawn from
the city pool, varying per query but holding the per-ranking composition
constant.  Keeping the composition fixed means the sampling noise of the
group-level measures is identical across cities and jobs, so measured
differences reflect the ranking bias rather than who happened to be around.

The true scores are available to the simulator (and to ablations) but, like
the real site, are *not* included in crawl output unless requested.
"""

from __future__ import annotations

from ..core.rankings import RankedList
from ..data.schema import WorkerProfile
from ..exceptions import DataError
from ..stats.rng import derive
from .catalog import CITIES, category_of, jobs_available_in
from .scoring import ScoringModel
from .workers import generate_population

__all__ = ["TaskRabbitSite", "RESULT_CAP", "AVAILABILITY_QUOTA"]

RESULT_CAP = 50
"""Maximum workers returned per query (the paper's crawl observed 50)."""

#: Workers available per query, by (gender, ethnicity) profile.  Sums to 52
#: — effectively the paper's 50-result pages — with shares tracking the
#: population among the demographically labeled (≈70% male, ≈64% white)
#: plus two workers whose pictures defied labeling.  Small minority counts
#: (a handful of Asian workers per page) match what the paper's crawls
#: observed and keep the distribution measures responsive: a small group's
#: *positions* move visibly under bias instead of being averaged away
#: inside a large within-group histogram.
AVAILABILITY_QUOTA: dict[tuple[str, str], int] = {
    ("Male", "White"): 24,
    ("Male", "Black"): 7,
    ("Male", "Asian"): 4,
    ("Female", "White"): 8,
    ("Female", "Black"): 4,
    ("Female", "Asian"): 3,
    ("Unknown", "Unknown"): 2,
}


class TaskRabbitSite:
    """A deterministic simulated marketplace.

    Parameters
    ----------
    seed:
        Root seed for both the population and the scoring model.
    bias_scale:
        Forwarded to :class:`~repro.marketplace.scoring.ScoringModel`;
        ``0.0`` gives an unbiased site for ablation runs.
    """

    def __init__(self, seed: int = 7, bias_scale: float = 1.0) -> None:
        self.seed = seed
        self.population: dict[str, list[WorkerProfile]] = generate_population(seed)
        self.scoring = ScoringModel(seed, bias_scale=bias_scale)

    @property
    def cities(self) -> tuple[str, ...]:
        """All supported cities."""
        return CITIES

    def workers_in(self, city: str) -> list[WorkerProfile]:
        """The worker pool of one city."""
        try:
            return list(self.population[city])
        except KeyError:
            raise DataError(f"unknown city {city!r}") from None

    def all_workers(self) -> list[WorkerProfile]:
        """Every worker on the site (the paper's 3,311 unique taskers)."""
        return [worker for pool in self.population.values() for worker in pool]

    def _available_workers(self, job: str, city: str) -> list[WorkerProfile]:
        """Draw the stratified availability sample for one query.

        For each demographic profile, :data:`AVAILABILITY_QUOTA` workers are
        chosen (without replacement, deterministically per query) from the
        city pool.  Workers who still offer everything are always eligible;
        a worker with an explicit ``offerings`` set is eligible only when it
        covers the queried job.
        """
        pool = self.workers_in(city)
        chosen: list[WorkerProfile] = []
        for (gender, ethnicity), quota in AVAILABILITY_QUOTA.items():
            members = [
                worker
                for worker in pool
                if worker.attributes.get("gender") == gender
                and worker.attributes.get("ethnicity") == ethnicity
                and worker.offers(job)
            ]
            if len(members) <= quota:
                chosen.extend(members)
                continue
            rng = derive(self.seed, "availability", city, job, gender, ethnicity)
            picks = rng.choice(len(members), size=quota, replace=False)
            chosen.extend(members[int(index)] for index in sorted(picks))
        if not chosen:
            raise DataError(f"no workers available for {job!r} in {city!r}")
        return chosen

    def search(
        self, job: str, city: str, limit: int = RESULT_CAP, with_scores: bool = False
    ) -> RankedList:
        """Rank the city's workers for ``job``; return the top ``limit``.

        ``job`` may be a concrete job type or a whole category (the paper's
        TaskRabbit queries address job categories).  Ties break on worker id
        so rankings are fully deterministic.
        """
        category_of(job)  # validates the job name
        pool = self._available_workers(job, city)
        scored = sorted(
            ((self.scoring.raw_score(worker, job, city), worker) for worker in pool),
            key=lambda pair: (-pair[0], pair[1].worker_id),
        )
        top = scored[:limit]
        items = [worker.worker_id for _, worker in top]
        scores = None
        if with_scores:
            # Min-max normalize the displayed scores per query so they live in
            # [0, 1] without the clipping ties that a hard clamp would create.
            raw_values = [raw for raw, _ in top]
            low, high = min(raw_values), max(raw_values)
            span = (high - low) or 1.0
            scores = {
                worker.worker_id: (raw - low) / span for raw, worker in top
            }
        return RankedList(items, scores)

    def offered_jobs(self, city: str) -> list[str]:
        """Job types offered in ``city`` (15 niche pairs are unavailable)."""
        return jobs_available_in(city)
