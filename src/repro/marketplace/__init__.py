"""TaskRabbit-style marketplace simulator: catalog, workers, scoring, crawl."""

from .catalog import (
    ALL_JOBS,
    CATEGORIES,
    CITIES,
    JOBS_BY_CATEGORY,
    UNAVAILABLE_PAIRS,
    category_of,
    crawl_queries,
    jobs_available_in,
)
from .crawl import CrawlReport, run_crawl
from .scoring import ETHNICITY_PENALTY, GENDER_PENALTY, PENALTY_SCALE, ScoringModel
from .site import RESULT_CAP, TaskRabbitSite
from .workers import (
    CITY_COMPOSITION,
    TOTAL_WORKERS,
    demographic_breakdown,
    generate_city_workers,
    generate_population,
)

__all__ = [
    "ALL_JOBS",
    "CATEGORIES",
    "CITIES",
    "JOBS_BY_CATEGORY",
    "UNAVAILABLE_PAIRS",
    "category_of",
    "crawl_queries",
    "jobs_available_in",
    "CrawlReport",
    "run_crawl",
    "ETHNICITY_PENALTY",
    "GENDER_PENALTY",
    "PENALTY_SCALE",
    "ScoringModel",
    "RESULT_CAP",
    "TaskRabbitSite",
    "CITY_COMPOSITION",
    "TOTAL_WORKERS",
    "demographic_breakdown",
    "generate_city_workers",
    "generate_population",
]
