"""Worker-population generator for the marketplace simulator.

Generates the 3,311-tasker population the paper crawled (Figures 7 and 8:
roughly 72% male and 66% white overall), distributed over the 56 cities.
Each city hosts a fixed demographic composition — every one of the six
gender×ethnicity profiles is guaranteed several members, so group
histograms are populated in (almost) every ranking — and each worker gets
marketplace features (rating, completed jobs, tenure, hourly rate) drawn
from seeded distributions.

Ratings are mildly depressed for penalized profiles, reflecting the paper's
observation (after Hannák et al.) that consumer ratings themselves correlate
with gender and race and "can perpetuate bias"; the scoring model then
propagates that bias into rankings.
"""

from __future__ import annotations

import numpy as np

from ..calibration import PROFILE_PENALTY, profile_key
from ..data.schema import WorkerProfile
from ..stats.rng import derive
from .catalog import CITIES

__all__ = [
    "TOTAL_WORKERS",
    "CITY_COMPOSITION",
    "generate_city_workers",
    "generate_population",
    "demographic_breakdown",
]

#: Per-city counts for each (gender, ethnicity) profile.  Summed over a city
#: this gives 59 workers; among the 57 with labeled demographics the gender
#: split is 39/18 (≈68% male) and the ethnicity split 35/13/9 (≈61% white),
#: tracking Figures 7–8.  Two workers per city carry ``"Unknown"`` labels —
#: profile pictures the AMT contributors could not classify — and therefore
#: belong to no demographic group while still occupying ranking positions
#: (they matter for ranking-wide exposure normalization).  Every profile's
#: pool exceeds its per-query availability quota (see
#: ``repro.marketplace.site``) so each ranking samples a fixed composition
#: with per-query variety.
CITY_COMPOSITION: dict[tuple[str, str], int] = {
    ("Male", "White"): 26,
    ("Male", "Black"): 8,
    ("Male", "Asian"): 5,
    ("Female", "White"): 9,
    ("Female", "Black"): 5,
    ("Female", "Asian"): 4,
    ("Unknown", "Unknown"): 2,
}

_BASE_CITY_SIZE = sum(CITY_COMPOSITION.values())  # 59

#: Seven of the largest markets get one extra (white male) tasker so the
#: population totals the paper's 3,311 unique workers.
_EXTRA_WORKER_CITIES: frozenset[str] = frozenset(
    {
        "New York City, NY",
        "Los Angeles, CA",
        "Chicago, IL",
        "San Francisco Bay Area, CA",
        "Houston, TX",
        "London, UK",
        "Boston, MA",
    }
)

TOTAL_WORKERS = _BASE_CITY_SIZE * len(CITIES) + len(_EXTRA_WORKER_CITIES)
"""Population size: 59 × 56 + 7 = 3,311, matching the paper's crawl."""

#: How strongly a profile's penalty depresses its consumer ratings.
_RATING_BIAS = 0.12


def _worker_features(rng: np.random.Generator, penalty: float) -> dict[str, float]:
    """Draw marketplace features for one worker.

    ``penalty`` is the profile's calibrated bias intensity in [0, 1]; it
    shifts ratings down slightly (consumer-rating bias) but leaves the other
    features demographically neutral.
    """
    rating = float(np.clip(rng.normal(4.7, 0.25) - _RATING_BIAS * penalty, 1.0, 5.0))
    jobs_completed = int(rng.integers(5, 600))
    tenure_months = int(rng.integers(1, 72))
    hourly_rate = float(np.round(rng.uniform(18.0, 95.0), 2))
    return {
        "rating": rating,
        "jobs_completed": float(jobs_completed),
        "tenure_months": float(tenure_months),
        "hourly_rate": hourly_rate,
    }


def generate_city_workers(city: str, seed: int) -> list[WorkerProfile]:
    """Generate the worker pool of one city, deterministically from ``seed``."""
    city_slug = city.replace(" ", "").replace(",", "")
    workers: list[WorkerProfile] = []
    serial = 0
    for (gender, ethnicity), count in CITY_COMPOSITION.items():
        extra = 1 if (gender, ethnicity) == ("Male", "White") and city in _EXTRA_WORKER_CITIES else 0
        penalty = PROFILE_PENALTY.get(profile_key(gender, ethnicity), 0.0)
        for _ in range(count + extra):
            rng = derive(seed, "worker", city, serial)
            workers.append(
                WorkerProfile(
                    worker_id=f"w-{city_slug}-{serial:03d}",
                    attributes={
                        "gender": gender,
                        "ethnicity": ethnicity,
                        "city": city,
                    },
                    features=_worker_features(rng, penalty),
                )
            )
            serial += 1
    return workers


def generate_population(seed: int) -> dict[str, list[WorkerProfile]]:
    """Generate every city's worker pool; keys are city names."""
    return {city: generate_city_workers(city, seed) for city in CITIES}


def demographic_breakdown(
    population: dict[str, list[WorkerProfile]]
) -> dict[str, dict[str, float]]:
    """Figures 7–8: the population's gender and ethnicity shares."""
    workers = [worker for pool in population.values() for worker in pool]
    total = len(workers)
    genders: dict[str, int] = {}
    ethnicities: dict[str, int] = {}
    for worker in workers:
        genders[worker.attributes["gender"]] = genders.get(worker.attributes["gender"], 0) + 1
        ethnicities[worker.attributes["ethnicity"]] = (
            ethnicities.get(worker.attributes["ethnicity"], 0) + 1
        )
    return {
        "gender": {name: count / total for name, count in sorted(genders.items())},
        "ethnicity": {name: count / total for name, count in sorted(ethnicities.items())},
    }
