"""The TaskRabbit crawl protocol (paper §5.1.1, Figure 6).

The paper's pipeline: enumerate every job offered in each of the 56 cities
(5,361 queries), run each query, record the tasker ranking (capped at 50),
then obtain tasker demographics by AMT majority vote.  :func:`run_crawl`
replays exactly that against the simulated site and returns a
:class:`~repro.data.schema.MarketplaceDataset` ready for the F-Box.

Two crawl granularities are supported:

* ``level="category"`` — one query per (job category, city), the granularity
  at which the paper reports its quantification results ("a query will be
  used to refer to a set of jobs in the same category"); 8 × 56 = 448
  observations.  This is the default and is fast.
* ``level="job"`` — one query per concrete (job type, city) pair, all 5,361
  of them, used by the sub-job comparison experiments (Tables 13–15) and the
  scale benchmarks.

Rankings carry no true scores by default, because the real site exposes
none; downstream relevance falls back to the paper's ``1 − rank/N`` proxy.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Iterator

from ..data.schema import MarketplaceDataset, MarketplaceObservation, WorkerProfile
from ..exceptions import DataError
from ..labeling.amt import AmtLabeler
from .catalog import CATEGORIES, CITIES, crawl_queries
from .site import RESULT_CAP, TaskRabbitSite

__all__ = ["CrawlReport", "emit_observations", "run_crawl"]


@dataclass(frozen=True)
class CrawlReport:
    """A finished crawl: the dataset plus protocol statistics."""

    dataset: MarketplaceDataset
    queries_run: int
    workers_observed: int
    labeling_accuracy: float


def run_crawl(
    site: TaskRabbitSite,
    level: str = "category",
    cities: list[str] | None = None,
    jobs: list[str] | None = None,
    label_seed: int | None = None,
    label_error_rate: float = 0.0,
    with_scores: bool = False,
    limit: int = RESULT_CAP,
) -> CrawlReport:
    """Crawl the simulated site and assemble a marketplace dataset.

    Parameters
    ----------
    site:
        The marketplace to crawl.
    level:
        ``"category"`` (default) or ``"job"``; see the module docstring.
    cities / jobs:
        Optional restrictions of the crawl scope (jobs are category names at
        category level, concrete job types at job level).
    label_seed / label_error_rate:
        When ``label_error_rate > 0``, tasker demographics pass through the
        simulated AMT majority vote with that per-contributor error rate;
        at the default ``0.0`` the true attributes are used and accuracy is
        reported as 1.0.
    with_scores:
        Include the true scores in the rankings (the real crawl could not;
        provided for the relevance-proxy ablation).
    limit:
        Result cap per query (the paper observed at most 50 taskers).
    """
    if level == "category":
        pairs = [
            (category, city)
            for city in (cities if cities is not None else CITIES)
            for category in (jobs if jobs is not None else CATEGORIES)
        ]
    elif level == "job":
        pairs = [
            (job, city)
            for job, city in crawl_queries()
            if (cities is None or city in cities) and (jobs is None or job in jobs)
        ]
    else:
        raise DataError(f"crawl level must be 'category' or 'job', got {level!r}")
    if not pairs:
        raise DataError("crawl scope selects no (job, city) queries")

    observations: list[MarketplaceObservation] = []
    observed_ids: set[str] = set()
    for job, city in pairs:
        ranking = site.search(job, city, limit=limit, with_scores=with_scores)
        observed_ids.update(ranking.items)
        observations.append(MarketplaceObservation(query=job, location=city, ranking=ranking))

    by_id = {worker.worker_id: worker for worker in site.all_workers()}
    observed_workers = [by_id[worker_id] for worker_id in sorted(observed_ids)]
    if label_error_rate > 0.0:
        labeler = AmtLabeler(
            seed=site.seed if label_seed is None else label_seed,
            error_rate=label_error_rate,
        )
        outcome = labeler.label_population(observed_workers)
        workers: tuple[WorkerProfile, ...] = outcome.workers
        accuracy = outcome.accuracy
    else:
        workers = tuple(observed_workers)
        accuracy = 1.0

    dataset = MarketplaceDataset(workers=workers, observations=observations)
    return CrawlReport(
        dataset=dataset,
        queries_run=len(pairs),
        workers_observed=len(observed_ids),
        labeling_accuracy=accuracy,
    )


def _perturb(items: list[str], rng: Random, swaps: int) -> list[str]:
    """A mild rank drift: ``swaps`` random adjacent transpositions."""
    items = list(items)
    for _ in range(swaps if len(items) > 1 else 0):
        position = rng.randrange(len(items) - 1)
        items[position], items[position + 1] = items[position + 1], items[position]
    return items


def emit_observations(
    site: TaskRabbitSite,
    dataset: MarketplaceDataset,
    batches: int = 1,
    batch_size: int = 8,
    seed: int = 0,
    swaps: int = 2,
    limit: int = RESULT_CAP,
) -> Iterator[list[dict]]:
    """Stream live re-crawl batches shaped for ``POST /v1/observations``.

    The paper's crawl is a repeated protocol, so the streaming mode replays
    it: each batch re-searches a rotating window of ``batch_size`` of the
    dataset's (job, city) queries against ``site`` and applies ``swaps``
    seeded adjacent transpositions per ranking — the drift a real site shows
    between crawls.  ``site`` must be the instance the dataset was crawled
    from (its population defines the known worker ids).  Yields plain JSON
    batches, ready for :meth:`repro.client.FBoxClient.ingest`.
    """
    pairs = [(o.query, o.location) for o in dataset.observations()]
    if not pairs:
        raise DataError("dataset has no observations to stream against")
    rng = Random(seed)
    cursor = 0
    for _ in range(batches):
        batch = []
        for _ in range(min(batch_size, len(pairs))):
            job, city = pairs[cursor % len(pairs)]
            cursor += 1
            ranking = site.search(job, city, limit=limit)
            batch.append(
                {
                    "query": job,
                    "location": city,
                    "ranking": _perturb(list(ranking.items), rng, swaps),
                }
            )
        yield batch
