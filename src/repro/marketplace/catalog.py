"""The marketplace catalog: cities and the job taxonomy.

The paper crawled TaskRabbit across its 56 supported cities, retrieving all
jobs offered per city, for a total of 5,361 (job, city) queries.  This
module reconstructs that catalog: 56 cities (including every city named in
the paper's tables) and a taxonomy of 8 job categories × 12 sub-jobs = 96
job types, with 15 (job, city) pairs marked unavailable so the crawl yields
exactly 5,361 queries.
"""

from __future__ import annotations

from ..exceptions import DataError

__all__ = [
    "CITIES",
    "CATEGORIES",
    "JOBS_BY_CATEGORY",
    "ALL_JOBS",
    "UNAVAILABLE_PAIRS",
    "category_of",
    "jobs_available_in",
    "crawl_queries",
]

#: The 56 supported cities.  The first 28 are every city the paper's tables
#: mention (note the paper distinguishes "San Francisco, CA" from the
#: "San Francisco Bay Area, CA"); the rest complete TaskRabbit's 2019 US
#: footprint.
CITIES: tuple[str, ...] = (
    "Birmingham, UK",
    "Oklahoma City, OK",
    "Bristol, UK",
    "Manchester, UK",
    "New Haven, CT",
    "Milwaukee, WI",
    "Memphis, TN",
    "Indianapolis, IN",
    "Nashville, TN",
    "Detroit, MI",
    "Chicago, IL",
    "San Francisco, CA",
    "Washington, DC",
    "Los Angeles, CA",
    "Boston, MA",
    "Atlanta, GA",
    "Houston, TX",
    "Orlando, FL",
    "Philadelphia, PA",
    "San Diego, CA",
    "Charlotte, NC",
    "Norfolk, VA",
    "St. Louis, MO",
    "Salt Lake City, UT",
    "San Francisco Bay Area, CA",
    "New York City, NY",
    "London, UK",
    "Pittsburgh, PA",
    "Austin, TX",
    "Baltimore, MD",
    "Dallas, TX",
    "Denver, CO",
    "Miami, FL",
    "Minneapolis, MN",
    "Phoenix, AZ",
    "Portland, OR",
    "Sacramento, CA",
    "Seattle, WA",
    "Tampa, FL",
    "Kansas City, MO",
    "Columbus, OH",
    "Cleveland, OH",
    "Cincinnati, OH",
    "Raleigh, NC",
    "Richmond, VA",
    "Jacksonville, FL",
    "Las Vegas, NV",
    "San Antonio, TX",
    "San Jose, CA",
    "Tucson, AZ",
    "Louisville, KY",
    "Buffalo, NY",
    "Rochester, NY",
    "Hartford, CT",
    "Providence, RI",
    "Albuquerque, NM",
)

#: The eight job categories of Table 9.
CATEGORIES: tuple[str, ...] = (
    "Handyman",
    "Yard Work",
    "Event Staffing",
    "General Cleaning",
    "Moving",
    "Furniture Assembly",
    "Run Errands",
    "Delivery",
)

#: Twelve concrete job types per category.  The sub-jobs the paper's
#: comparison tables name (Lawn Mowing, Event Decorating, Back To Organized,
#: Organize & Declutter, Organize Closet) appear under their categories.
JOBS_BY_CATEGORY: dict[str, tuple[str, ...]] = {
    "Handyman": (
        "Door Repair",
        "Shelf Mounting",
        "TV Mounting",
        "Picture Hanging",
        "Light Fixture Installation",
        "Faucet Repair",
        "Drywall Patching",
        "Window Repair",
        "Caulking",
        "Weatherproofing",
        "Fence Repair",
        "Gutter Repair",
    ),
    "Yard Work": (
        "Lawn Mowing",
        "Leaf Raking",
        "Weeding",
        "Hedge Trimming",
        "Garden Planting",
        "Mulching",
        "Snow Removal",
        "Patio Painting",
        "Garage Cleaning",
        "Pressure Washing",
        "Tree Pruning",
        "Composting Setup",
    ),
    "Event Staffing": (
        "Event Decorating",
        "Party Setup",
        "Bartending Help",
        "Coat Check",
        "Registration Desk",
        "Catering Help",
        "Ushering",
        "AV Setup",
        "Photo Booth Attendant",
        "Event Cleanup",
        "Crowd Management",
        "Wedding Help",
    ),
    "General Cleaning": (
        "Back To Organized",
        "Organize & Declutter",
        "Organize Closet",
        "Deep Cleaning",
        "Home Cleaning",
        "Office Cleaning",
        "Move-Out Cleaning",
        "Carpet Cleaning",
        "Window Cleaning",
        "Kitchen Cleaning",
        "Bathroom Cleaning",
        "Laundry Help",
    ),
    "Moving": (
        "Full Service Moving",
        "Heavy Lifting",
        "Truck-Assisted Moving",
        "Packing Help",
        "Unpacking Help",
        "Storage Unit Moving",
        "Appliance Moving",
        "Piano Moving",
        "In-Home Furniture Moving",
        "Junk Hauling",
        "Donation Pickup",
        "Rearranging Furniture",
    ),
    "Furniture Assembly": (
        "IKEA Assembly",
        "Bed Assembly",
        "Desk Assembly",
        "Bookshelf Assembly",
        "Wardrobe Assembly",
        "Crib Assembly",
        "Patio Furniture Assembly",
        "Office Chair Assembly",
        "Disassembly",
        "Exercise Equipment Assembly",
        "Shelving Assembly",
        "Table Assembly",
    ),
    "Run Errands": (
        "Running Errands",
        "Grocery Shopping",
        "Pharmacy Pickup",
        "Dry Cleaning Dropoff",
        "Post Office Run",
        "Waiting In Line",
        "Senior Errands",
        "Pet Supply Run",
        "Return Items",
        "Gift Shopping",
        "Car Wash Run",
        "Odd Jobs",
    ),
    "Delivery": (
        "Package Delivery",
        "Food Delivery",
        "Furniture Delivery",
        "Document Courier",
        "Flower Delivery",
        "Appliance Delivery",
        "Same-Day Delivery",
        "Bike Courier",
        "Grocery Delivery",
        "Equipment Delivery",
        "Pallet Delivery",
        "Art Delivery",
    ),
}

ALL_JOBS: tuple[str, ...] = tuple(
    job for category in CATEGORIES for job in JOBS_BY_CATEGORY[category]
)

#: The 15 (job, city) pairs not offered, bringing 96 × 56 = 5,376 down to the
#: paper's 5,361 crawled queries.  Weather- and density-driven gaps.
UNAVAILABLE_PAIRS: frozenset[tuple[str, str]] = frozenset(
    {
        ("Snow Removal", "Houston, TX"),
        ("Snow Removal", "Miami, FL"),
        ("Snow Removal", "Orlando, FL"),
        ("Snow Removal", "Tampa, FL"),
        ("Snow Removal", "Phoenix, AZ"),
        ("Snow Removal", "San Diego, CA"),
        ("Snow Removal", "Las Vegas, NV"),
        ("Snow Removal", "Jacksonville, FL"),
        ("Snow Removal", "San Antonio, TX"),
        ("Snow Removal", "Tucson, AZ"),
        ("Piano Moving", "New Haven, CT"),
        ("Piano Moving", "Providence, RI"),
        ("Bike Courier", "Oklahoma City, OK"),
        ("Bike Courier", "Tucson, AZ"),
        ("Crowd Management", "New Haven, CT"),
    }
)

_CATEGORY_BY_JOB: dict[str, str] = {
    job: category
    for category, jobs in JOBS_BY_CATEGORY.items()
    for job in jobs
}


def category_of(job: str) -> str:
    """The category a job type (or a category itself) belongs to."""
    if job in JOBS_BY_CATEGORY:
        return job
    try:
        return _CATEGORY_BY_JOB[job]
    except KeyError:
        raise DataError(f"unknown job type {job!r}") from None


def jobs_available_in(city: str) -> list[str]:
    """All job types offered in ``city``."""
    if city not in CITIES:
        raise DataError(f"unknown city {city!r}")
    return [job for job in ALL_JOBS if (job, city) not in UNAVAILABLE_PAIRS]


def crawl_queries() -> list[tuple[str, str]]:
    """Every (job, city) pair the crawl visits — exactly 5,361."""
    return [
        (job, city)
        for city in CITIES
        for job in ALL_JOBS
        if (job, city) not in UNAVAILABLE_PAIRS
    ]
