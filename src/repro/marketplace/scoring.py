"""The marketplace scoring function ``f_q^l(w)``.

The paper treats the marketplace's scoring function as a black box that maps
a worker to a score in [0, 1] for a (query, location) pair, observing only
the resulting ranking.  This module is that black box for the simulator:

    score = base_quality(worker, job)  −  demographic_penalty(worker, job, city)

``base_quality`` depends on consumer ratings, completed jobs and a per-job
fit term — the legitimate signals a marketplace ranks by.  The penalty is
the calibrated bias model (see :mod:`repro.calibration`): a per-profile
intensity decomposed into additive gender and ethnicity components, scaled
by per-job and per-city multipliers, with the interaction overrides that
realize the paper's comparison findings (Tables 12–15).

The decomposition is exact at the extremes: the paper's Table 8 gives the
Asian-Female intensity as the sum of the Asian-Male and White-Female ones,
so ``penalty(profile) = gender_component + ethnicity_component`` reproduces
the full-profile ordering.
"""

from __future__ import annotations

import numpy as np

from ..calibration import (
    FEMALE_FAIRER_LOCATIONS,
    JOB_BIAS,
    JOB_ETHNICITY_BOOSTS,
    JOB_ETHNICITY_OVERRIDES,
    LOCATION_CATEGORY_OVERRIDES,
    LOCATION_SUBJOB_OVERRIDES,
    PROFILE_PENALTY,
    location_bias,
    profile_key,
)
from ..data.schema import WorkerProfile
from ..stats.rng import derive
from .catalog import category_of

__all__ = ["ScoringModel", "GENDER_PENALTY", "ETHNICITY_PENALTY", "PENALTY_SCALE"]

#: Additive gender component of the profile penalty (White Female row of
#: Table 8, rescaled): what being female costs, all else equal.
GENDER_PENALTY: dict[str, float] = {
    "Female": PROFILE_PENALTY["White Female"],
    "Male": 0.0,
}

#: Additive ethnicity component (Asian Male / Black Male rows of Table 8).
ETHNICITY_PENALTY: dict[str, float] = {
    "Asian": PROFILE_PENALTY["Asian Male"],
    "Black": PROFILE_PENALTY["Black Male"],
    "White": 0.0,
}

#: Global strength of the smooth (shift) component of the demographic
#: penalty relative to base quality.
PENALTY_SCALE = 0.06

#: Global strength of the *exclusion* component: the probability, per query,
#: that a penalized worker is pushed to the bottom of the ranking outright.
#: A score shift saturates once groups are fully stratified (rank distance
#: is bounded by group sizes), but an exclusion probability keeps the group
#: distributions separating linearly in the bias intensity — which is what
#: lets the per-city and per-job unfairness orderings span the range the
#: paper reports instead of collapsing onto a sampling floor.
EXCLUSION_SCALE = 0.80

#: Score drop applied by an exclusion event (far below the quality spread).
_EXCLUSION_DROP = 0.6

#: Spread of the per-(worker, job, city) fit term.  Fit dominates the
#: quality variance and is redrawn for every query, so a group's luck in one
#: city's feature draws cannot masquerade as systematic (un)fairness there.
_FIT_SPREAD = 0.30

#: Amplification of the flipped gender penalty in the Table 12 reversal
#: cities (see :data:`repro.calibration.FEMALE_FAIRER_LOCATIONS`).
_FLIP_AMPLIFIER = 2.2

#: Extra per-query score noise applied in proportion to a profile's bias
#: intensity.  Discrimination shows up not only as a downward shift but as
#: *erratic* treatment — penalized groups' score distributions are wider —
#: which lets the EMD measure separate profiles (e.g. Asian Males from Black
#: Females) that a pure shift model would tie.
_INSTABILITY_SCALE = 0.05


class ScoringModel:
    """Deterministic scoring function for the marketplace simulator.

    Parameters
    ----------
    seed:
        Root seed; every (worker, job) fit draw derives from it, so two
        models with the same seed produce identical rankings.
    bias_scale:
        Multiplier on :data:`PENALTY_SCALE`; ``0.0`` yields a bias-free
        marketplace (used by the ablation benchmarks).
    """

    def __init__(self, seed: int, bias_scale: float = 1.0) -> None:
        self.seed = seed
        self.bias_scale = bias_scale

    # ------------------------------------------------------------------
    # Quality: the legitimate ranking signals
    # ------------------------------------------------------------------

    def base_quality(self, worker: WorkerProfile, job: str, city: str = "") -> float:
        """Rating, experience, and per-query job fit combined into [0.30, 0.93]."""
        rating = worker.features.get("rating", 4.0)
        jobs_completed = worker.features.get("jobs_completed", 50.0)
        rating_term = 0.08 * (rating - 1.0) / 4.0
        experience_term = 0.05 * min(jobs_completed / 400.0, 1.0)
        fit_rng = derive(self.seed, "fit", worker.worker_id, job, city)
        fit_term = float(fit_rng.uniform(0.0, _FIT_SPREAD))
        return 0.30 + rating_term + experience_term + fit_term

    # ------------------------------------------------------------------
    # Bias: the calibrated demographic penalty
    # ------------------------------------------------------------------

    def gender_component(self, gender: str, city: str) -> float:
        """Gender penalty; flipped onto men in the Table 12 reversal cities.

        The flip is amplified so those cities' male-vs-female gap clears the
        sampling noise of the group-level measures — in the paper's data the
        reversal cities show males markedly worse off (Table 12).
        """
        female_penalty = GENDER_PENALTY["Female"]
        if city in FEMALE_FAIRER_LOCATIONS:
            return _FLIP_AMPLIFIER * female_penalty if gender == "Male" else 0.0
        return GENDER_PENALTY.get(gender, 0.0)

    def ethnicity_component(self, ethnicity: str, job: str) -> float:
        """Ethnicity penalty with the Tables 13–14 job interactions."""
        base = ETHNICITY_PENALTY.get(ethnicity, 0.0)
        multiplier = JOB_ETHNICITY_OVERRIDES.get((job, ethnicity), 1.0)
        boost = JOB_ETHNICITY_BOOSTS.get((job, ethnicity), 0.0)
        return base * multiplier - boost

    def bias_intensity(self, worker: WorkerProfile, job: str, city: str) -> float:
        """Combined bias intensity for one (worker, job, city) triple.

        The product of the worker's profile components and the job/city
        multipliers, *before* the global channel scales.  Can be negative
        when a boost override applies (then only the shift channel acts).
        """
        gender = worker.attributes.get("gender", "")
        ethnicity = worker.attributes.get("ethnicity", "")
        profile_part = self.gender_component(gender, city) + self.ethnicity_component(
            ethnicity, job
        )
        category = category_of(job)
        job_multiplier = JOB_BIAS[category]
        city_multiplier = (
            location_bias(city)
            * LOCATION_CATEGORY_OVERRIDES.get((city, category), 1.0)
            * LOCATION_SUBJOB_OVERRIDES.get((city, job), 1.0)
        )
        return job_multiplier * city_multiplier * profile_part

    def penalty(self, worker: WorkerProfile, job: str, city: str) -> float:
        """Smooth score penalty (the shift channel of the bias model)."""
        return PENALTY_SCALE * self.bias_scale * self.bias_intensity(worker, job, city)

    def exclusion_probability(self, worker: WorkerProfile, job: str, city: str) -> float:
        """Per-query probability of a displacement event for this worker.

        Positive for penalized profiles (an *exclusion*: pushed to the
        bottom); negative where a boost override applies (a *promotion*:
        floated to the top).  Magnitude capped at 0.85.
        """
        intensity = self.bias_intensity(worker, job, city)
        return float(np.clip(EXCLUSION_SCALE * self.bias_scale * intensity, -0.85, 0.85))

    def exclusion(self, worker: WorkerProfile, job: str, city: str) -> float:
        """The displacement channel: 0, or a large score decrement.

        Returns the decrement applied to the score: positive when an
        exclusion event fires, negative when a promotion event fires.
        """
        probability = self.exclusion_probability(worker, job, city)
        if probability == 0.0:
            return 0.0
        rng = derive(self.seed, "exclusion", worker.worker_id, job, city)
        if float(rng.uniform()) < abs(probability):
            return _EXCLUSION_DROP if probability > 0.0 else -_EXCLUSION_DROP
        return 0.0

    # ------------------------------------------------------------------
    # The scoring function the site ranks by
    # ------------------------------------------------------------------

    def instability(self, worker: WorkerProfile, job: str, city: str) -> float:
        """Bias-proportional score jitter for one (worker, job, city) triple.

        The spread grows with the *square* of the profile's bias intensity,
        so heavily penalized profiles are treated markedly more erratically
        than mildly penalized ones — which is what lets marginal groups
        (Asian vs White) separate under a symmetric distance.
        """
        gender = worker.attributes.get("gender", "")
        ethnicity = worker.attributes.get("ethnicity", "")
        profile = profile_key(gender, ethnicity) if gender and ethnicity else None
        intensity = PROFILE_PENALTY.get(profile, 0.0) if profile else 0.0
        if intensity == 0.0 or self.bias_scale == 0.0:
            return 0.0
        rng = derive(self.seed, "instability", worker.worker_id, job, city)
        spread = _INSTABILITY_SCALE * self.bias_scale * intensity**2
        return float(rng.normal(0.0, spread))

    def raw_score(self, worker: WorkerProfile, job: str, city: str) -> float:
        """Unbounded ranking score: quality − penalty + instability.

        Rankings are produced from the raw score so that heavy penalties keep
        separating groups instead of piling everyone onto a clipped floor.
        """
        return (
            self.base_quality(worker, job, city)
            - self.penalty(worker, job, city)
            - self.exclusion(worker, job, city)
            + self.instability(worker, job, city)
        )

    def score(self, worker: WorkerProfile, job: str, city: str) -> float:
        """``f_q^l(w)`` ∈ [0, 1]: the raw score clipped to the unit interval."""
        return float(np.clip(self.raw_score(worker, job, city), 0.0, 1.0))
