#!/usr/bin/env bash
# Smoke test for the F-Box query service:
#   boots `repro serve` on a free port, waits for /healthz, fires one
#   /quantify request, and exits nonzero on any failure.
#
# Usage: scripts/smoke_service.sh [timeout-seconds]
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
TIMEOUT="${1:-120}"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

PORT="$(python3 - <<'EOF'
import socket
with socket.socket() as s:
    s.bind(("127.0.0.1", 0))
    print(s.getsockname()[1])
EOF
)" || { echo "smoke: could not pick a free port" >&2; exit 1; }

BASE="http://127.0.0.1:${PORT}"
LOG="$(mktemp)"

python3 -m repro serve --port "$PORT" --scope small >"$LOG" 2>&1 &
SERVER_PID=$!

cleanup() {
    kill "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
    rm -f "$LOG"
}
trap cleanup EXIT

fail() {
    echo "smoke: $1" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2
    exit 1
}

# http GET|POST <url> [json-body] -> prints "<status> <body>"
http() {
    python3 - "$@" <<'EOF'
import json, sys, urllib.error, urllib.request
method, url = sys.argv[1], sys.argv[2]
data = sys.argv[3].encode() if len(sys.argv) > 3 else None
request = urllib.request.Request(
    url, data=data, method=method,
    headers={"Content-Type": "application/json"} if data else {},
)
try:
    with urllib.request.urlopen(request, timeout=30) as response:
        print(response.status, response.read().decode())
except urllib.error.HTTPError as error:
    print(error.code, error.read().decode())
except Exception as error:
    print(0, error)
EOF
}

# Wait for /healthz (the small-scope datasets load lazily, so boot is fast).
DEADLINE=$((SECONDS + TIMEOUT))
while true; do
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server process died during boot"
    RESULT="$(http GET "$BASE/healthz")"
    STATUS="${RESULT%% *}"
    if [ "$STATUS" = "200" ]; then
        break
    fi
    [ "$SECONDS" -lt "$DEADLINE" ] || fail "healthz did not answer 200 within ${TIMEOUT}s (last: $RESULT)"
    sleep 0.5
done
echo "smoke: healthz ok"

RESULT="$(http POST "$BASE/quantify" '{"dataset": "taskrabbit", "dimension": "group", "k": 3}')"
STATUS="${RESULT%% *}"
[ "$STATUS" = "200" ] || fail "quantify answered $RESULT"
case "$RESULT" in
    *'"unfairness"'*) ;;
    *) fail "quantify body lacks unfairness values: $RESULT" ;;
esac
echo "smoke: quantify ok"

RESULT="$(http POST "$BASE/batch" '[{"op": "quantify", "dataset": "taskrabbit", "dimension": "group", "k": 2}, {"op": "quantify", "dataset": "taskrabbit", "dimension": "group", "k": 4}]')"
STATUS="${RESULT%% *}"
[ "$STATUS" = "200" ] || fail "batch answered $RESULT"
case "$RESULT" in
    *'"sweep_groups": 1'*|*'"sweep_groups":1'*) ;;
    *) fail "batch envelope lacks a shared sweep group: $RESULT" ;;
esac
echo "smoke: batch ok"

RESULT="$(http GET "$BASE/metrics")"
STATUS="${RESULT%% *}"
[ "$STATUS" = "200" ] || fail "metrics answered $RESULT"
case "$RESULT" in
    *fbox_requests_total*) ;;
    *) fail "metrics exposition lacks fbox_requests_total" ;;
esac
echo "smoke: metrics ok"

echo "smoke: PASS"
exit 0
