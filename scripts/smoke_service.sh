#!/usr/bin/env bash
# Smoke test for the F-Box query service, in five passes:
#
#   1. plain boot: /healthz, /readyz, /quantify, /batch, /metrics;
#   2. chaos (breaker): boot with FBOX_FAULTS making the google loader crash
#      twice — watch the circuit open (503 circuit_open), then recover
#      through a half-open probe after the backoff;
#   3. chaos (degraded): boot with an injected /quantify stall longer than
#      the request deadline — a warm `allow_stale` request must round-trip
#      a last-known-good answer marked `"degraded": true`;
#   4. sharded: boot with `--shards 2` and drive the versioned /v1 API —
#      queries answered by both worker processes, a cross-shard /batch,
#      worker build counts merged into /metrics, and the deprecation
#      headers on legacy unversioned paths;
#   5. live ingest: boot sharded with a tiny --alert-threshold, stream a
#      simulated re-crawl batch through `repro ingest`, replay it (must be
#      idempotent), then read the per-generation trend points from
#      /v1/trends and the fairness alerts from /v1/metrics + /v1/datasets;
#   6. columnar core: boot sharded with `--core columnar`, answer queries
#      from the shared-memory segments, ingest a batch through the write
#      path, and — after shutdown — assert no fbx* segment survives in
#      /dev/shm (the leak check);
#   7. live resize: boot with `--shards 2 --admin-token`, ingest, then
#      resize the pool to 4 and back to 2 through POST /v1/admin/shards
#      while a background FBoxClient query loop hammers both datasets —
#      the loop must see zero failures (only transparent retries), the
#      post-resize answers must match the pre-resize ones, and the replayed
#      batch must still answer from the migrated idempotency ledger;
#   8. scenarios + loadgen: boot sharded with an admin token, register the
#      `null_no_bias` scenario at runtime through POST /v1/datasets, list
#      it via GET /v1/scenarios, then replay the seeded traffic mix with
#      `repro loadgen --quick` — the run must finish with zero hard
#      failures and non-zero throughput.
#
# All eight passes run once per transport backend (`--backend threads`,
# then `--backend asyncio`) — the two fronts share one application layer,
# so every pass must behave identically on both.
#
# Unversioned paths are retired (410 by default); pass 1 asserts the 410
# pointer, pass 4 boots with `--legacy-routes serve` to cover the
# deprecated straggler passthrough.
#
# Exits nonzero on any failure.
#
# Usage: scripts/smoke_service.sh [timeout-seconds]
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
TIMEOUT="${1:-120}"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

LOG="$(mktemp)"
SERVER_PID=""

pick_port() {
    python3 - <<'EOF'
import socket
with socket.socket() as s:
    s.bind(("127.0.0.1", 0))
    print(s.getsockname()[1])
EOF
}

cleanup() {
    stop_server
    rm -f "$LOG"
}
trap cleanup EXIT

fail() {
    echo "smoke[${BACKEND:-}]: $1" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2
    exit 1
}

# http GET|POST <url> [json-body] -> prints "<status> <body>"
http() {
    python3 - "$@" <<'EOF'
import json, sys, urllib.error, urllib.request
method, url = sys.argv[1], sys.argv[2]
data = sys.argv[3].encode() if len(sys.argv) > 3 else None
request = urllib.request.Request(
    url, data=data, method=method,
    headers={"Content-Type": "application/json"} if data else {},
)
try:
    with urllib.request.urlopen(request, timeout=30) as response:
        print(response.status, response.read().decode())
except urllib.error.HTTPError as error:
    print(error.code, error.read().decode())
except Exception as error:
    print(0, error)
EOF
}

# http_header <url> <header-name> -> prints the header value ("" if absent)
http_header() {
    python3 - "$@" <<'EOF'
import sys, urllib.error, urllib.request
url, name = sys.argv[1], sys.argv[2]
try:
    with urllib.request.urlopen(url, timeout=30) as response:
        print(response.headers.get(name, ""))
except urllib.error.HTTPError as error:
    print(error.headers.get(name, ""))
except Exception:
    print("")
EOF
}

# boot_server <extra serve args...> — starts `repro serve` on a fresh port
# with the current $BACKEND transport, waits for /healthz, and sets
# BASE/SERVER_PID.  FBOX_FAULTS is inherited from the caller's environment.
boot_server() {
    PORT="$(pick_port)" || fail "could not pick a free port"
    BASE="http://127.0.0.1:${PORT}"
    : >"$LOG"
    python3 -m repro serve --port "$PORT" --scope small \
        --backend "$BACKEND" "$@" >"$LOG" 2>&1 &
    SERVER_PID=$!
    local deadline=$((SECONDS + TIMEOUT))
    while true; do
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server process died during boot"
        local result status
        result="$(http GET "$BASE/v1/healthz")"
        status="${result%% *}"
        if [ "$status" = "200" ]; then
            break
        fi
        [ "$SECONDS" -lt "$deadline" ] || fail "healthz did not answer 200 within ${TIMEOUT}s (last: $result)"
        sleep 0.5
    done
}

stop_server() {
    if [ -n "$SERVER_PID" ]; then
        kill "$SERVER_PID" 2>/dev/null
        wait "$SERVER_PID" 2>/dev/null
        SERVER_PID=""
    fi
}

# expect <status> <label> <method> <url> [body] — one checked request;
# prints the body on stdout for follow-up greps.
expect() {
    local want="$1" label="$2"
    shift 2
    local result status
    result="$(http "$@")"
    status="${result%% *}"
    [ "$status" = "$want" ] || fail "$label answered $result (wanted $want)"
    printf '%s\n' "${result#* }"
}

run_passes() {

# ----------------------------------------------------------------------
# Pass 1: plain service
# ----------------------------------------------------------------------

boot_server
expect 200 "readyz" GET "$BASE/v1/readyz" >/dev/null
echo "smoke: healthz + readyz ok"

# The unversioned mount is retired: a known legacy path answers 410 with a
# machine-readable pointer to its /v1 home.
BODY="$(expect 410 "retired legacy path" GET "$BASE/healthz")"
case "$BODY" in
    *'"v1_path": "/v1/healthz"'*|*'"v1_path":"/v1/healthz"'*) ;;
    *) fail "410 body lacks the v1_path pointer: $BODY" ;;
esac
echo "smoke: legacy 410 pointer ok"

BODY="$(expect 200 "quantify" POST "$BASE/v1/quantify" '{"dataset": "taskrabbit", "dimension": "group", "k": 3}')"
case "$BODY" in
    *'"unfairness"'*) ;;
    *) fail "quantify body lacks unfairness values: $BODY" ;;
esac
echo "smoke: quantify ok"

BODY="$(expect 200 "batch" POST "$BASE/v1/batch" '[{"op": "quantify", "dataset": "taskrabbit", "dimension": "group", "k": 2}, {"op": "quantify", "dataset": "taskrabbit", "dimension": "group", "k": 4}]')"
case "$BODY" in
    *'"sweep_groups": 1'*|*'"sweep_groups":1'*) ;;
    *) fail "batch envelope lacks a shared sweep group: $BODY" ;;
esac
echo "smoke: batch ok"

BODY="$(expect 200 "metrics" GET "$BASE/v1/metrics")"
case "$BODY" in
    *fbox_requests_total*) ;;
    *) fail "metrics exposition lacks fbox_requests_total" ;;
esac
case "$BODY" in
    *fbox_breaker_state*) ;;
    *) fail "metrics exposition lacks fbox_breaker_state" ;;
esac
echo "smoke: metrics ok"
stop_server

# ----------------------------------------------------------------------
# Pass 2: circuit breaker opens on a crashing loader, then recovers
# ----------------------------------------------------------------------

GOOGLE='{"dataset": "google", "dimension": "location", "k": 2}'

export FBOX_FAULTS='{"seed": 7, "rules": [{"site": "dataset_load", "match": "google", "times": 2}]}'
boot_server --breaker-failures 2 --breaker-reset 1
unset FBOX_FAULTS

# Two injected load crashes surface as 500s and open the circuit ...
expect 500 "chaos quantify #1" POST "$BASE/v1/quantify" "$GOOGLE" >/dev/null
expect 500 "chaos quantify #2" POST "$BASE/v1/quantify" "$GOOGLE" >/dev/null
# ... so the next request is rejected instantly with the breaker state ...
BODY="$(expect 503 "quarantined quantify" POST "$BASE/v1/quantify" "$GOOGLE")"
case "$BODY" in
    *circuit_open*) ;;
    *) fail "quarantined response lacks circuit_open: $BODY" ;;
esac
BODY="$(expect 503 "readyz while quarantined" GET "$BASE/v1/readyz")"
case "$BODY" in
    *'"unavailable"'*) ;;
    *) fail "readyz should be unavailable while quarantined: $BODY" ;;
esac
echo "smoke: breaker opened ok"

# ... and after the 1s backoff a half-open probe (fault budget spent) heals it.
sleep 1.2
BODY="$(expect 200 "recovered quantify" POST "$BASE/v1/quantify" "$GOOGLE")"
case "$BODY" in
    *'"unfairness"'*) ;;
    *) fail "recovered quantify lacks unfairness values: $BODY" ;;
esac
expect 200 "readyz after recovery" GET "$BASE/v1/readyz" >/dev/null
echo "smoke: breaker recovered ok"
stop_server

# ----------------------------------------------------------------------
# Pass 3: degraded (stale) answers under an injected stall
# ----------------------------------------------------------------------

STALE='{"dataset": "taskrabbit", "dimension": "group", "k": 3, "allow_stale": true}'

export FBOX_FAULTS='{"seed": 7, "rules": [{"site": "latency", "match": "/quantify", "skip": 1, "latency": 30.0}]}'
boot_server --timeout 2
unset FBOX_FAULTS

# The first request is exempt (skip=1) and warms the last-known-good store.
expect 200 "warming quantify" POST "$BASE/v1/quantify" "$STALE" >/dev/null
# The second stalls past the 2s deadline; allow_stale must round-trip the
# stale answer, loudly marked.
BODY="$(expect 200 "degraded quantify" POST "$BASE/v1/quantify" "$STALE")"
case "$BODY" in
    *'"degraded": true'*|*'"degraded":true'*) ;;
    *) fail "stalled quantify was not served degraded: $BODY" ;;
esac
BODY="$(expect 200 "metrics after degraded" GET "$BASE/v1/metrics")"
case "$BODY" in
    *'fbox_degraded_responses_total 1'*) ;;
    *) fail "metrics do not count the degraded response" ;;
esac
echo "smoke: degraded answer ok"
stop_server

# ----------------------------------------------------------------------
# Pass 4: sharded execution (--shards 2) behind the versioned /v1 API
# ----------------------------------------------------------------------

# --legacy-routes serve keeps the straggler passthrough alive so the
# RFC 8594 deprecation headers stay covered.
boot_server --shards 2 --legacy-routes serve
expect 200 "sharded readyz" GET "$BASE/v1/readyz" >/dev/null

BODY="$(expect 200 "sharded quantify (taskrabbit)" POST "$BASE/v1/quantify" '{"dataset": "taskrabbit", "dimension": "group", "k": 3}')"
case "$BODY" in
    *'"unfairness"'*) ;;
    *) fail "sharded quantify body lacks unfairness values: $BODY" ;;
esac
expect 200 "sharded quantify (google)" POST "$BASE/v1/quantify" '{"dataset": "google", "dimension": "location", "k": 2}' >/dev/null
echo "smoke: sharded quantify ok (both workers answering)"

BODY="$(expect 200 "cross-shard batch" POST "$BASE/v1/batch" '[{"op": "quantify", "dataset": "taskrabbit", "dimension": "group", "k": 2}, {"op": "quantify", "dataset": "google", "dimension": "location", "k": 2}]')"
case "$BODY" in
    *'"succeeded": 2'*|*'"succeeded":2'*) ;;
    *) fail "cross-shard batch did not succeed on both items: $BODY" ;;
esac
echo "smoke: cross-shard batch ok"

BODY="$(expect 200 "sharded metrics" GET "$BASE/v1/metrics")"
case "$BODY" in
    *'fbox_cube_builds_total 2'*) ;;
    *) fail "sharded metrics do not merge worker build counts: $BODY" ;;
esac
echo "smoke: sharded metrics merge ok"

# Legacy unversioned paths still answer, flagged deprecated; /v1 is clean.
DEPRECATION="$(http_header "$BASE/healthz" Deprecation)"
[ "$DEPRECATION" = "true" ] || fail "legacy path lacks Deprecation: true header"
DEPRECATION="$(http_header "$BASE/v1/healthz" Deprecation)"
[ -z "$DEPRECATION" ] || fail "/v1 path unexpectedly carries a Deprecation header"
echo "smoke: deprecation headers ok"

BODY="$(expect 200 "schema" GET "$BASE/v1/schema")"
case "$BODY" in
    *'"shard_unavailable"'*) ;;
    *) fail "schema lacks the shard_unavailable error code: $BODY" ;;
esac
echo "smoke: sharded /v1 pass ok"
stop_server

# ----------------------------------------------------------------------
# Pass 5: live ingest + trends on the sharded /v1 write path
# ----------------------------------------------------------------------

boot_server --shards 2 --alert-threshold 0.0001

# Warm the taskrabbit cube so the ingest applies a delta, not a no-op.
expect 200 "pre-ingest quantify" POST "$BASE/v1/quantify" '{"dataset": "taskrabbit", "dimension": "group", "k": 3}' >/dev/null

# Stream one simulated re-crawl batch (same seed/scope as the serving
# registry) through the CLI's ingest client.
INGEST_FILE="$(mktemp)"
python3 -m repro simulate taskrabbit --scope small --stream \
    --batches 1 --batch-size 2 >"$INGEST_FILE" 2>>"$LOG" \
    || fail "simulate --stream failed"
OUT="$(python3 -m repro ingest "$BASE" "$INGEST_FILE" 2>&1)" \
    || fail "repro ingest failed: $OUT"
case "$OUT" in
    *'generation 2'*) ;;
    *) fail "ingest did not bump the taskrabbit generation: $OUT" ;;
esac

# Replaying the same file must be idempotent: same batch_id, no new
# generation, counted as a replay.
OUT="$(python3 -m repro ingest "$BASE" "$INGEST_FILE" 2>&1)" \
    || fail "repro ingest replay failed: $OUT"
case "$OUT" in
    *'1 replayed'*) ;;
    *) fail "replayed batch was not deduplicated: $OUT" ;;
esac
rm -f "$INGEST_FILE"
echo "smoke: ingest + idempotent replay ok"

# The streamed batch touched (Handyman, Birmingham) first, so that cell has
# a recorded trend point for the new generation.
BODY="$(expect 200 "trends" GET "$BASE/v1/trends?dataset=taskrabbit&group=gender%3DFemale&query=Handyman&location=Birmingham%2C%20UK")"
case "$BODY" in
    *'"points"'*) ;;
    *) fail "trends body lacks points: $BODY" ;;
esac
case "$BODY" in
    *'"generation": 2'*|*'"generation":2'*) ;;
    *) fail "trends lack a generation-2 point: $BODY" ;;
esac
echo "smoke: trends ok"

# The perturbed crawl crosses the tiny threshold: alerts must surface in
# the merged /v1/metrics and in the /v1/datasets ingest overlay.
BODY="$(expect 200 "metrics after ingest" GET "$BASE/v1/metrics")"
ALERTS="$(printf '%s\n' "$BODY" | grep -o 'fbox_fairness_alerts_total [0-9]*' | awk '{print $2}')"
[ -n "$ALERTS" ] && [ "$ALERTS" -gt 0 ] || fail "no fairness alerts in metrics (got '${ALERTS:-missing}')"
BODY="$(expect 200 "datasets after ingest" GET "$BASE/v1/datasets")"
case "$BODY" in
    *'"ingest_batches": 1'*|*'"ingest_batches":1'*) ;;
    *) fail "datasets overlay lacks the ingest batch count: $BODY" ;;
esac
echo "smoke: fairness alerts ok"
stop_server

# ----------------------------------------------------------------------
# Pass 6: columnar shared-memory core (--core columnar) + leak check
# ----------------------------------------------------------------------

# Segments from anything else running on this machine are not ours to
# judge: snapshot /dev/shm before boot and diff after shutdown.
SHM_BEFORE="$(ls /dev/shm 2>/dev/null | grep '^fbx' | sort)"

boot_server --shards 2 --core columnar --alert-threshold 0.0001
expect 200 "columnar readyz" GET "$BASE/v1/readyz" >/dev/null

BODY="$(expect 200 "columnar quantify (taskrabbit)" POST "$BASE/v1/quantify" '{"dataset": "taskrabbit", "dimension": "group", "k": 3}')"
case "$BODY" in
    *'"unfairness"'*) ;;
    *) fail "columnar quantify body lacks unfairness values: $BODY" ;;
esac
expect 200 "columnar quantify (google)" POST "$BASE/v1/quantify" '{"dataset": "google", "dimension": "location", "k": 2}' >/dev/null
echo "smoke: columnar quantify ok"

# The worker published its cube: segments must be live in /dev/shm now.
SHM_LIVE="$(ls /dev/shm 2>/dev/null | grep '^fbx' | sort)"
[ "$SHM_LIVE" != "$SHM_BEFORE" ] || fail "columnar server published no /dev/shm segment"

# The columnar write path: ingest must publish a new generation, and the
# post-ingest read must reflect it.
INGEST_FILE="$(mktemp)"
python3 -m repro simulate taskrabbit --scope small --stream \
    --batches 1 --batch-size 2 >"$INGEST_FILE" 2>>"$LOG" \
    || fail "simulate --stream failed (columnar)"
OUT="$(python3 -m repro ingest "$BASE" "$INGEST_FILE" 2>&1)" \
    || fail "columnar ingest failed: $OUT"
case "$OUT" in
    *'generation 2'*) ;;
    *) fail "columnar ingest did not bump the generation: $OUT" ;;
esac
rm -f "$INGEST_FILE"
expect 200 "post-ingest columnar quantify" POST "$BASE/v1/quantify" '{"dataset": "taskrabbit", "dimension": "group", "k": 3}' >/dev/null
echo "smoke: columnar ingest ok"

BODY="$(expect 200 "columnar metrics" GET "$BASE/v1/metrics")"
case "$BODY" in
    *fbox_segment_attaches_total*) ;;
    *) fail "columnar metrics lack fbox_segment_attaches_total" ;;
esac
echo "smoke: columnar metrics ok"

# Graceful shutdown must sweep every segment this server created.
stop_server
SHM_AFTER="$(ls /dev/shm 2>/dev/null | grep '^fbx' | sort)"
[ "$SHM_AFTER" = "$SHM_BEFORE" ] || fail "leaked /dev/shm segments after shutdown: $(printf '%s' "$SHM_AFTER" | tr '\n' ' ')"
echo "smoke: columnar segment sweep ok"

# ----------------------------------------------------------------------
# Pass 7: live shard-pool resize under a background query loop
# ----------------------------------------------------------------------

boot_server --shards 2 --admin-token smoke-token

# Seed the write path so the resize has real state to migrate.
INGEST_FILE="$(mktemp)"
python3 -m repro simulate taskrabbit --scope small --stream \
    --batches 1 --batch-size 2 >"$INGEST_FILE" 2>>"$LOG" \
    || fail "simulate --stream failed (resize)"
python3 -m repro ingest "$BASE" "$INGEST_FILE" >/dev/null 2>&1 \
    || fail "pre-resize ingest failed"

PRE_RESIZE="$(expect 200 "pre-resize quantify" POST "$BASE/v1/quantify" '{"dataset": "taskrabbit", "dimension": "group", "k": 3}')"

# The admin endpoint is armed: no token (or a wrong one) must be a 403.
BODY="$(expect 403 "unauthorized resize" POST "$BASE/v1/admin/shards" '{"count": 4}')"
case "$BODY" in
    *forbidden*) ;;
    *) fail "unauthorized resize lacks the forbidden error kind: $BODY" ;;
esac
echo "smoke: admin token gate ok"

# Background open-loop traffic: FBoxClient retries 429/503 transparently,
# so any surfaced exception is a non-retryable failure — the resize must
# produce none.  The loop records its failures for the post-resize check.
TRAFFIC_LOG="$(mktemp)"
python3 - "$BASE" >"$TRAFFIC_LOG" 2>&1 <<'EOF' &
import sys
from repro.client import FBoxClient, RetryPolicy

base = sys.argv[1]
queries = 0
with FBoxClient(base, retry=RetryPolicy(seed=5)) as client:
    try:
        while True:
            client.quantify("taskrabbit", "group", k=3)
            client.quantify("google", "location", k=2)
            queries += 2
    except BaseException as error:  # noqa: BLE001 - reported to the smoke
        print(f"FAILED after {queries} queries: {error!r}", flush=True)
        raise SystemExit(1)
EOF
TRAFFIC_PID=$!

resize() {
    local count="$1"
    python3 - "$BASE" "$count" <<'EOF'
import sys
from repro.client import FBoxClient, RetryPolicy

base, count = sys.argv[1], int(sys.argv[2])
with FBoxClient(base, retry=RetryPolicy(seed=5)) as client:
    outcome = client.resize(count, token="smoke-token")
    print(f"resized {outcome['from']} -> {outcome['to']} "
          f"(moved {len(outcome['migrated'])})")
EOF
}

resize 4 || { kill "$TRAFFIC_PID" 2>/dev/null; fail "resize to 4 failed"; }
resize 2 || { kill "$TRAFFIC_PID" 2>/dev/null; fail "resize back to 2 failed"; }

kill "$TRAFFIC_PID" 2>/dev/null
wait "$TRAFFIC_PID" 2>/dev/null
case "$(cat "$TRAFFIC_LOG")" in
    *FAILED*) fail "background traffic saw a non-retryable failure: $(cat "$TRAFFIC_LOG")" ;;
esac
rm -f "$TRAFFIC_LOG"
echo "smoke: resize under traffic ok (zero client failures)"

# State survived the round trip: same answer, and the migrated ledger
# still recognizes the original batch as a replay.
POST_RESIZE="$(expect 200 "post-resize quantify" POST "$BASE/v1/quantify" '{"dataset": "taskrabbit", "dimension": "group", "k": 3}')"
PRE_NORM="$(printf '%s' "$PRE_RESIZE" | python3 -c 'import json,sys; d=json.load(sys.stdin); d.pop("cached", None); print(json.dumps(d, sort_keys=True))')"
POST_NORM="$(printf '%s' "$POST_RESIZE" | python3 -c 'import json,sys; d=json.load(sys.stdin); d.pop("cached", None); print(json.dumps(d, sort_keys=True))')"
[ "$PRE_NORM" = "$POST_NORM" ] || fail "post-resize answer diverged: $POST_NORM vs $PRE_NORM"
OUT="$(python3 -m repro ingest "$BASE" "$INGEST_FILE" 2>&1)" \
    || fail "post-resize replay failed: $OUT"
case "$OUT" in
    *'1 replayed'*) ;;
    *) fail "post-resize replay was not deduplicated: $OUT" ;;
esac
rm -f "$INGEST_FILE"

BODY="$(expect 200 "metrics after resize" GET "$BASE/v1/metrics")"
case "$BODY" in
    *'fbox_resizes_total 2'*) ;;
    *) fail "metrics do not count both resizes: $BODY" ;;
esac
echo "smoke: resize state + metrics ok"
stop_server

# ----------------------------------------------------------------------
# Pass 8: runtime scenario registration + the seeded loadgen mix
# ----------------------------------------------------------------------

boot_server --shards 2 --admin-token smoke-token

# GET /v1/scenarios advertises the preset catalog (paginated).
BODY="$(expect 200 "scenario catalog" GET "$BASE/v1/scenarios")"
case "$BODY" in
    *'"null_no_bias"'*) ;;
    *) fail "scenario catalog lacks null_no_bias: $BODY" ;;
esac
echo "smoke: scenario catalog ok"

# Register the null scenario at runtime; the admin gate must hold first.
BODY="$(expect 403 "unauthorized dataset registration" POST "$BASE/v1/datasets" '{"name": "nb", "scenario": "null_no_bias"}')"
case "$BODY" in
    *forbidden*) ;;
    *) fail "unauthorized registration lacks the forbidden error kind: $BODY" ;;
esac
python3 - "$BASE" <<'EOF' || fail "scenario registration via POST /v1/datasets failed"
import sys
from repro.client import FBoxClient, RetryPolicy

with FBoxClient(sys.argv[1], retry=RetryPolicy(max_attempts=1, seed=0)) as client:
    document = client.register_scenario("nb", "null_no_bias", token="smoke-token")
    assert document["dataset"] == "nb", document
    assert document["scenario"] == "null_no_bias", document
    listing = {entry["name"]: entry for entry in client.datasets()["datasets"]}
    assert listing["nb"]["loaded"] is False, listing["nb"]  # lazy until queried
EOF
echo "smoke: runtime dataset registration ok"

# Replay the seeded traffic mix against the registered dataset.  The CLI
# exits nonzero on any hard failure, so the && is the error-budget gate.
LOADGEN_OUT="$(python3 -m repro loadgen "$BASE" --dataset nb \
    --scenario null_no_bias --quick --seed 3 2>&1)" \
    || fail "repro loadgen reported hard failures: $LOADGEN_OUT"
case "$LOADGEN_OUT" in
    *'hard=0'*) ;;
    *) fail "loadgen report lacks a zero hard-failure count: $LOADGEN_OUT" ;;
esac
THROUGHPUT="$(printf '%s\n' "$LOADGEN_OUT" | grep -o 'throughput=[0-9.]*' | cut -d= -f2)"
python3 -c "import sys; sys.exit(0 if float('${THROUGHPUT:-0}') > 0 else 1)" \
    || fail "loadgen measured no throughput: $LOADGEN_OUT"
echo "smoke: loadgen mix ok (zero hard failures, ${THROUGHPUT} req/s)"
stop_server

}

for BACKEND in threads asyncio; do
    echo "smoke: === backend $BACKEND ==="
    run_passes
    echo "smoke: backend $BACKEND PASS"
done

echo "smoke: PASS"
exit 0
